"""Bit-identity properties: flat-array fast paths vs their per-sample oracles.

These tests pin the oracle pairs registered in
``tools/polaris_lint/contracts.py`` (rule PL002):

- ``tree-predict``: ``FlatTree``-based ``predict_batch`` /
  ``leaf_indices`` vs the recursive ``predict_value`` / ``decision_path``
  node walk.
- ``tree-shap-expectation``: the bottom-up ``expectation_batch`` sweep vs
  the recursive ``expectation`` oracle.
- ``tree-shap-explain``: the batched ``explain_matrix`` vs per-sample
  ``explain``.

Every assertion is *bitwise* (``np.array_equal`` / ``==`` on floats is
deliberate here): the vectorised paths are required to reproduce the
oracle exactly, not approximately, so the hybrid per-sample/batched code
paths can never disagree.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    FlatTree,
    GradientBoostingClassifier,
    LEAF,
    RandomForestClassifier,
)
from repro.xai.tree_shap import TreeShapExplainer, _extract_trees

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

MODEL_FACTORIES = {
    "tree": lambda depth: DecisionTreeClassifier(max_depth=depth,
                                                 random_state=0),
    "forest": lambda depth: RandomForestClassifier(n_estimators=4,
                                                   max_depth=depth,
                                                   random_state=1),
    "adaboost": lambda depth: AdaBoostClassifier(n_estimators=5,
                                                 max_depth=depth,
                                                 random_state=2),
    "gboost": lambda depth: GradientBoostingClassifier(n_estimators=5,
                                                       learning_rate=0.2,
                                                       max_depth=depth,
                                                       random_state=3),
}


def _dataset(seed, n_samples, n_features, single_class=False,
             constant_feature=False, weighted=False):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n_samples, n_features))
    if constant_feature:
        features[:, 0] = 1.5
    if single_class:
        labels = np.ones(n_samples, dtype=int)
    else:
        labels = (features.sum(axis=1) > 0).astype(int)
        labels[0] = 0  # guarantee both classes when possible
        labels[-1] = 1
    weights = rng.uniform(0.1, 2.0, size=n_samples) if weighted else None
    return features, labels, weights


def _fitted_trees(model):
    """Every fitted ``_FittedTree`` inside ``model``."""
    if hasattr(model, "estimators_"):
        return [tree.tree_ for tree in model.estimators_]
    return [model.tree_]


# ----------------------------------------------------------------------
# Oracle pair tree-predict: predict_batch vs predict_value
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(MODEL_FACTORIES))
@SETTINGS
@given(seed=st.integers(0, 10_000), n_samples=st.integers(5, 40),
       n_features=st.integers(1, 6), depth=st.integers(1, 4),
       weighted=st.booleans())
def test_predict_batch_matches_predict_value(family, seed, n_samples,
                                             n_features, depth, weighted):
    features, labels, weights = _dataset(seed, n_samples, n_features,
                                         weighted=weighted)
    model = MODEL_FACTORIES[family](depth)
    model.fit(features, labels, sample_weight=weights)
    queries = np.random.default_rng(seed + 1).normal(
        size=(n_samples, n_features))
    for fitted in _fitted_trees(model):
        batch = fitted.predict_batch(queries)
        oracle = np.vstack([fitted.predict_value(row) for row in queries])
        assert np.array_equal(batch, oracle)


@SETTINGS
@given(seed=st.integers(0, 10_000), n_samples=st.integers(5, 40),
       n_features=st.integers(1, 5), depth=st.integers(1, 5))
def test_regressor_predict_batch_matches_predict_value(seed, n_samples,
                                                       n_features, depth):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n_samples, n_features))
    targets = rng.normal(size=n_samples)
    model = DecisionTreeRegressor(max_depth=depth, random_state=0)
    model.fit(features, targets)
    queries = rng.normal(size=(n_samples, n_features))
    batch = model.tree_.predict_batch(queries)
    oracle = np.vstack([model.tree_.predict_value(row) for row in queries])
    assert np.array_equal(batch, oracle)
    assert np.array_equal(model.predict(queries), oracle[:, 0])


@SETTINGS
@given(seed=st.integers(0, 10_000), n_samples=st.integers(5, 30),
       n_features=st.integers(1, 5), depth=st.integers(1, 4))
def test_leaf_indices_match_decision_path(seed, n_samples, n_features, depth):
    features, labels, _ = _dataset(seed, n_samples, n_features)
    model = DecisionTreeClassifier(max_depth=depth, random_state=0)
    model.fit(features, labels)
    queries = np.random.default_rng(seed + 1).normal(
        size=(n_samples, n_features))
    leaves = model.tree_.leaf_indices(queries)
    for index, row in enumerate(queries):
        assert leaves[index] == model.tree_.decision_path(row)[-1]


@pytest.mark.parametrize("degenerate", ["single_class", "constant_feature"])
def test_predict_batch_degenerate_corners(degenerate):
    features, labels, _ = _dataset(
        0, 12, 3,
        single_class=degenerate == "single_class",
        constant_feature=degenerate == "constant_feature")
    for family, factory in sorted(MODEL_FACTORIES.items()):
        model = factory(3)
        model.fit(features, labels)
        for fitted in _fitted_trees(model):
            batch = fitted.predict_batch(features)
            oracle = np.vstack([fitted.predict_value(row) for row in features])
            assert np.array_equal(batch, oracle), family


def test_flat_tree_mirrors_nodes_topologically():
    features, labels, _ = _dataset(3, 40, 4)
    model = DecisionTreeClassifier(max_depth=4, random_state=0)
    model.fit(features, labels)
    flat = model.tree_.flat
    nodes = model.tree_.nodes
    assert isinstance(flat, FlatTree)
    assert flat.n_nodes == len(nodes)
    for index, node in enumerate(nodes):
        assert flat.feature[index] == node.feature
        assert np.array_equal(flat.value[index], node.value)
        if node.feature != LEAF:
            # Children always sit at larger indices (topological order);
            # the vectorised SHAP sweep relies on this.
            assert node.left > index and node.right > index
            assert flat.left[index] == node.left
            assert flat.right[index] == node.right


# ----------------------------------------------------------------------
# Oracle pair tree-shap-expectation: expectation_batch vs expectation
# ----------------------------------------------------------------------
@SETTINGS
@given(seed=st.integers(0, 10_000), n_samples=st.integers(3, 20),
       n_features=st.integers(2, 5), known_seed=st.integers(0, 100))
def test_expectation_batch_matches_expectation(seed, n_samples, n_features,
                                               known_seed):
    features, labels, _ = _dataset(seed, max(n_samples, 8), n_features)
    model = RandomForestClassifier(n_estimators=3, max_depth=3,
                                   random_state=0).fit(features, labels)
    trees, _, _ = _extract_trees(model)
    known_rng = np.random.default_rng(known_seed)
    queries = np.random.default_rng(seed + 1).normal(
        size=(n_samples, n_features))
    for tree in trees:
        n_known = int(known_rng.integers(0, n_features + 1))
        known = frozenset(
            int(f) for f in known_rng.choice(n_features, size=n_known,
                                             replace=False))
        batch = tree.expectation_batch(queries, known)
        for index, row in enumerate(queries):
            assert batch[index] == tree.expectation(row, known)


# ----------------------------------------------------------------------
# Oracle pair tree-shap-explain: explain_matrix vs explain
# ----------------------------------------------------------------------
def _assert_explanations_identical(batch, oracle):
    assert np.array_equal(batch.shap_values, oracle.shap_values)
    assert batch.base_value == oracle.base_value
    assert batch.prediction == oracle.prediction
    assert np.array_equal(batch.data, oracle.data)


@pytest.mark.parametrize("family", sorted(MODEL_FACTORIES))
@SETTINGS
@given(seed=st.integers(0, 10_000), n_samples=st.integers(2, 10),
       n_features=st.integers(2, 5))
def test_explain_matrix_matches_explain(family, seed, n_samples, n_features):
    features, labels, _ = _dataset(seed, 25, n_features)
    model = MODEL_FACTORIES[family](3).fit(features, labels)
    explainer = TreeShapExplainer(model)
    queries = np.random.default_rng(seed + 1).normal(
        size=(n_samples, n_features))
    batch = explainer.explain_matrix(queries)
    assert len(batch) == n_samples
    for index, row in enumerate(queries):
        _assert_explanations_identical(batch[index], explainer.explain(row))


@SETTINGS
@given(seed=st.integers(0, 10_000), n_features=st.integers(2, 4))
def test_explain_matrix_matches_explain_sampled_fallback(seed, n_features):
    features, labels, _ = _dataset(seed, 30, n_features)
    model = DecisionTreeClassifier(max_depth=4, random_state=0).fit(
        features, labels)
    # max_exact_features=1 forces the permutation-sampling path whenever a
    # tree splits on more than one feature.
    explainer = TreeShapExplainer(model, max_exact_features=1,
                                  n_permutations=12, seed=7)
    queries = np.random.default_rng(seed + 1).normal(size=(6, n_features))
    batch = explainer.explain_matrix(queries)
    for index, row in enumerate(queries):
        _assert_explanations_identical(batch[index], explainer.explain(row))


def test_explain_matrix_regressor_and_1d_input():
    rng = np.random.default_rng(5)
    features = rng.normal(size=(40, 4))
    targets = features[:, 0] * 2.0 - features[:, 2]
    model = DecisionTreeRegressor(max_depth=4, random_state=0).fit(
        features, targets)
    explainer = TreeShapExplainer(model)
    row = rng.normal(size=4)
    batch = explainer.explain_matrix(row)
    assert len(batch) == 1
    _assert_explanations_identical(batch[0], explainer.explain(row))


def test_explain_matrix_rejects_wrong_width():
    features, labels, _ = _dataset(0, 20, 3)
    model = DecisionTreeClassifier(max_depth=2, random_state=0).fit(
        features, labels)
    explainer = TreeShapExplainer(model)
    with pytest.raises(ValueError, match="does not match"):
        explainer.explain_matrix(np.zeros((2, 5)))
