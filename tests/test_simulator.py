"""Tests for the vectorised logic simulator and levelisation."""

import numpy as np
import pytest

from repro.netlist import GateType, Netlist
from repro.simulation import (
    LevelizationError,
    LogicSimulator,
    SimulationError,
    functional_equivalent,
    gate_levels,
    level_groups,
    simulate,
    topological_gate_order,
)


class TestLevelization:
    def test_topological_order_respects_dependencies(self, tiny_netlist):
        order = topological_gate_order(tiny_netlist)
        assert order.index("g_and") < order.index("g_xor")
        assert order.index("g_xor") < order.index("g_nand")
        assert order.index("g_nand") < order.index("g_not")

    def test_levels(self, tiny_netlist):
        levels = gate_levels(tiny_netlist)
        assert levels["g_and"] == 1
        assert levels["g_or"] == 1
        assert levels["g_xor"] == 2
        assert levels["g_nand"] == 3
        assert levels["g_not"] == 4

    def test_level_groups_sorted(self, tiny_netlist):
        groups = level_groups(tiny_netlist)
        assert [level for level, _ in groups] == sorted(level for level, _ in groups)
        assert groups[0][1] == ["g_and", "g_or"]

    def test_combinational_loop_raises(self):
        netlist = Netlist("loop")
        netlist.add_primary_input("a")
        netlist.add_primary_output("y")
        netlist.add_gate("g1", GateType.AND, ["a", "n2"], "n1")
        netlist.add_gate("g2", GateType.OR, ["n1", "a"], "n2")
        netlist.add_primary_output("n1")
        with pytest.raises(LevelizationError):
            topological_gate_order(netlist)


class TestSimulation:
    def test_known_function(self, tiny_netlist, rng):
        n = 128
        stimulus = {net: rng.integers(0, 2, n).astype(bool)
                    for net in tiny_netlist.primary_inputs}
        result = simulate(tiny_netlist, stimulus)
        a, b, c, d = (stimulus[x] for x in ("a", "b", "c", "d"))
        n1 = a & b
        n2 = c | d
        n3 = n1 ^ n2
        expected_y = ~(~(n1 & n3))  # NOT(NAND(n1, n3)) == AND
        np.testing.assert_array_equal(result.net_values["n3"], n3)
        np.testing.assert_array_equal(result.net_values["y"], n1 & n3)
        assert result.n_vectors == n

    def test_missing_input_raises(self, tiny_netlist):
        with pytest.raises(SimulationError, match="missing stimulus"):
            simulate(tiny_netlist, {"a": np.zeros(4, bool)})

    def test_inconsistent_lengths_raise(self, tiny_netlist):
        stimulus = {net: np.zeros(4, bool) for net in tiny_netlist.primary_inputs}
        stimulus["a"] = np.zeros(5, bool)
        with pytest.raises(SimulationError, match="inconsistent"):
            simulate(tiny_netlist, stimulus)

    def test_sequential_state_defaults_to_zero(self, sequential_netlist):
        stimulus = {"a": np.array([True]), "b": np.array([False])}
        result = simulate(sequential_netlist, stimulus)
        # q defaults to 0, so y = q & a = 0; next state captures a^b = 1.
        assert not result.net_values["y"][0]
        assert result.next_state["q"][0]

    def test_run_cycles_propagates_state(self, sequential_netlist):
        simulator = LogicSimulator(sequential_netlist)
        cycles = [
            {"a": np.array([True]), "b": np.array([False])},
            {"a": np.array([True]), "b": np.array([True])},
        ]
        results = simulator.run_cycles(cycles)
        # Cycle 1: q=0 -> y=0; cycle 2: q=1 (captured a^b from cycle 1) -> y=q&a=1.
        assert not results[0].net_values["y"][0]
        assert results[1].net_values["y"][0]

    def test_gate_output_accessor(self, tiny_netlist, rng):
        stimulus = {net: rng.integers(0, 2, 8).astype(bool)
                    for net in tiny_netlist.primary_inputs}
        result = simulate(tiny_netlist, stimulus)
        np.testing.assert_array_equal(result.gate_output(tiny_netlist, "g_and"),
                                      result.net_values["n1"])

    def test_empty_stimulus_raises(self, tiny_netlist):
        with pytest.raises(SimulationError, match="no input stimulus"):
            simulate(tiny_netlist, {})

    def test_scalar_stimulus_gets_clear_error(self, tiny_netlist):
        stimulus = {net: True for net in tiny_netlist.primary_inputs}
        with pytest.raises(SimulationError, match="scalar stimulus"):
            simulate(tiny_netlist, stimulus)

    def test_list_stimulus_accepted(self, tiny_netlist):
        stimulus = {net: [True, False, True]
                    for net in tiny_netlist.primary_inputs}
        result = simulate(tiny_netlist, stimulus)
        assert result.n_vectors == 3
        np.testing.assert_array_equal(
            result.net_values["n1"], np.array([True, False, True]))

    def test_mutating_returned_state_does_not_corrupt_cycles(
            self, sequential_netlist):
        # Regression: the simulator used to alias one shared zero buffer
        # across undriven nets, DFF defaults and the exported next_state; a
        # caller mutating the returned state corrupted unrelated nets.
        simulator = LogicSimulator(sequential_netlist)
        cycles = [
            {"a": np.array([True, True]), "b": np.array([False, True])},
            {"a": np.array([True, True]), "b": np.array([True, False])},
        ]
        reference = [r.net_values["y"].copy()
                     for r in simulator.run_cycles(cycles)]

        first = simulator.evaluate(cycles[0])
        # Mutate the exported state in place: this must not touch any array
        # the simulator hands out for later evaluations.
        first.next_state["q"][:] = ~first.next_state["q"]
        rerun = [r.net_values["y"].copy() for r in simulator.run_cycles(cycles)]
        for expected, actual in zip(reference, rerun):
            np.testing.assert_array_equal(expected, actual)

    def test_default_state_buffer_is_read_only(self, sequential_netlist):
        result = simulate(sequential_netlist,
                          {"a": np.array([True]), "b": np.array([False])})
        with pytest.raises(ValueError):
            result.net_values["q"][:] = True

    def test_state_shape_mismatch_rejected(self, sequential_netlist):
        stimulus = {"a": np.zeros(5, bool), "b": np.zeros(5, bool)}
        with pytest.raises(SimulationError, match="state for register"):
            simulate(sequential_netlist, stimulus,
                     state={"q": np.array([True])})


class TestFunctionalEquivalence:
    def test_copy_is_equivalent(self, random_netlist):
        assert functional_equivalent(random_netlist, random_netlist.copy(),
                                     n_vectors=128)

    def test_modified_design_is_not_equivalent(self, tiny_netlist):
        altered = tiny_netlist.copy("altered")
        gate = altered.gate("g_and").copy()
        gate.gate_type = GateType.OR
        altered.replace_gate("g_and", gate)
        assert not functional_equivalent(tiny_netlist, altered, n_vectors=256)
