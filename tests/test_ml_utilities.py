"""Tests for SMOTE, metrics, scaling and model selection."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    Smote,
    StandardScaler,
    accuracy_score,
    classification_report,
    confusion_matrix,
    cross_val_score,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
    stratified_k_fold,
    train_test_split,
)
from repro.ml.base import NotFittedError


class TestSmote:
    def test_balances_classes(self, rng):
        features = rng.normal(size=(200, 4))
        labels = (rng.random(200) < 0.1).astype(int)
        resampled_x, resampled_y = Smote(random_state=1).fit_resample(features, labels)
        counts = np.bincount(resampled_y)
        assert counts[0] == counts[1]
        assert resampled_x.shape[0] == resampled_y.shape[0]

    def test_original_samples_preserved(self, rng):
        features = rng.normal(size=(50, 3))
        labels = np.array([1] * 5 + [0] * 45)
        resampled_x, _ = Smote(random_state=0).fit_resample(features, labels)
        np.testing.assert_allclose(resampled_x[:50], features)

    def test_synthetic_samples_interpolate_minority(self, rng):
        minority = rng.normal(5.0, 0.1, size=(6, 2))
        majority = rng.normal(-5.0, 0.1, size=(60, 2))
        features = np.vstack([minority, majority])
        labels = np.array([1] * 6 + [0] * 60)
        resampled_x, resampled_y = Smote(random_state=2).fit_resample(features, labels)
        synthetic = resampled_x[66:]
        assert (synthetic[:, 0] > 0).all()  # stays near the minority cluster

    def test_single_class_passthrough(self, rng):
        features = rng.normal(size=(10, 2))
        labels = np.ones(10, dtype=int)
        resampled_x, resampled_y = Smote().fit_resample(features, labels)
        assert resampled_x.shape == features.shape

    def test_singleton_minority_duplicated(self, rng):
        features = np.vstack([rng.normal(size=(9, 2)), [[7.0, 7.0]]])
        labels = np.array([0] * 9 + [1])
        resampled_x, resampled_y = Smote(random_state=0).fit_resample(features, labels)
        assert (resampled_y == 1).sum() == 9
        np.testing.assert_allclose(resampled_x[resampled_y == 1], 7.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Smote(k_neighbors=0)
        with pytest.raises(ValueError):
            Smote(target_ratio=0.0)


class TestMetrics:
    def test_accuracy_precision_recall_f1(self):
        y_true = np.array([1, 1, 0, 0, 1, 0])
        y_pred = np.array([1, 0, 0, 1, 1, 0])
        assert accuracy_score(y_true, y_pred) == pytest.approx(4 / 6)
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_degenerate_cases(self):
        assert precision_score(np.array([0, 0]), np.array([0, 0])) == 0.0
        assert recall_score(np.array([0, 0]), np.array([1, 1])) == 0.0
        assert f1_score(np.array([0, 1]), np.array([0, 0])) == 0.0

    def test_confusion_matrix(self):
        y_true = np.array([0, 0, 1, 1, 2])
        y_pred = np.array([0, 1, 1, 1, 0])
        matrix = confusion_matrix(y_true, y_pred)
        assert matrix.shape == (3, 3)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert matrix[1, 1] == 2
        assert matrix.sum() == 5

    def test_roc_auc_perfect_and_random(self, rng):
        labels = np.array([0, 0, 1, 1])
        assert roc_auc_score(labels, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
        assert roc_auc_score(labels, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0
        # Constant scores -> 0.5 by the tie handling.
        assert roc_auc_score(labels, np.zeros(4)) == pytest.approx(0.5)

    def test_classification_report_keys(self):
        report = classification_report(np.array([0, 1]), np.array([0, 1]))
        assert set(report) == {"accuracy", "precision", "recall", "f1"}
        assert report["accuracy"] == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score(np.zeros(3), np.zeros(4))


class TestScaler:
    def test_transform_standardises(self, rng):
        features = rng.normal(5.0, 3.0, size=(400, 3))
        scaler = StandardScaler()
        scaled = scaler.fit_transform(features)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_round_trip(self, rng):
        features = rng.normal(size=(50, 4))
        scaler = StandardScaler().fit(features)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(features)), features)

    def test_constant_column_not_scaled(self):
        features = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        scaled = StandardScaler().fit_transform(features)
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))


class TestModelSelection:
    def test_train_test_split_sizes_and_stratification(self, rng):
        features = rng.normal(size=(100, 3))
        labels = np.array([0] * 80 + [1] * 20)
        Xtr, Xte, ytr, yte = train_test_split(features, labels, 0.25, seed=1)
        assert len(yte) + len(ytr) == 100
        # Stratified: both classes represented in the test set proportionally.
        assert 0.1 < yte.mean() < 0.35

    def test_split_validation(self, rng):
        features = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            train_test_split(features, np.zeros(10), test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(features, np.zeros(9))

    def test_stratified_k_fold_partitions(self):
        labels = np.array([0] * 20 + [1] * 10)
        folds = stratified_k_fold(labels, n_folds=5, seed=0)
        assert len(folds) == 5
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(30))
        for train, test in folds:
            assert set(train).isdisjoint(set(test))
            assert (labels[test] == 1).sum() == 2

    def test_cross_val_score_reasonable(self, rng):
        features = rng.normal(size=(200, 4))
        labels = (features[:, 0] > 0).astype(int)
        scores = cross_val_score(lambda: DecisionTreeClassifier(max_depth=3),
                                 features, labels, n_folds=4, seed=1)
        assert scores.shape == (4,)
        assert scores.mean() > 0.85

    def test_train_test_split_singleton_class_stays_in_train(self, rng):
        # Regression: max(1, ...) used to send a singleton class entirely
        # to the test split, making it unlearnable for the train side.
        features = rng.normal(size=(11, 2))
        labels = np.array([0] * 10 + [1])
        _, _, ytr, yte = train_test_split(features, labels, 0.3, seed=0)
        assert (ytr == 1).sum() == 1
        assert (yte == 1).sum() == 0

    def test_train_test_split_every_class_keeps_a_train_member(self, rng):
        features = rng.normal(size=(9, 2))
        labels = np.array([0, 0, 0, 1, 1, 2, 2, 3, 3])
        _, _, ytr, _ = train_test_split(features, labels, 0.5, seed=3)
        assert set(np.unique(ytr)) == {0, 1, 2, 3}

    def test_stratified_k_fold_skips_empty_folds(self):
        # 6 samples cannot fill 5 folds; empty folds must be dropped, not
        # returned (they used to crash downstream metrics).
        labels = np.array([0, 0, 0, 1, 1, 1])
        folds = stratified_k_fold(labels, n_folds=5, seed=0)
        assert 2 <= len(folds) < 5
        for train, test in folds:
            assert train.size > 0 and test.size > 0

    def test_stratified_k_fold_too_few_samples_raises(self):
        with pytest.raises(ValueError, match="usable folds"):
            stratified_k_fold(np.array([0]), n_folds=3, seed=0)

    def test_cross_val_score_tiny_dataset_no_crash(self, rng):
        # Regression: an empty fold reached metrics._validate and raised
        # "metrics require at least one sample" mid-CV.
        features = rng.normal(size=(7, 2))
        labels = np.array([0, 0, 0, 0, 1, 1, 1])
        scores = cross_val_score(lambda: DecisionTreeClassifier(max_depth=2),
                                 features, labels, n_folds=5, seed=0)
        assert 2 <= scores.size <= 5
        assert np.isfinite(scores).all()
