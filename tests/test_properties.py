"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.masking import (
    apply_masking,
    maskable_gates,
    reference_masked_and,
    reference_masked_or,
    reference_masked_xor,
)
from repro.netlist import (
    GateType,
    RandomLogicSpec,
    generate_random_logic,
    parse_bench,
    validate_netlist,
    write_bench,
)
from repro.simulation import evaluate_gate, functional_equivalent, simulate
from repro.tvla import OnePassMoments, welch_t_test
from repro.xai import KernelShapExplainer, TreeShapExplainer
from repro.ml import DecisionTreeClassifier

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Masked-gate correctness over every bit combination is already exhaustive;
# here hypothesis drives the vectorised equivalents.
# ----------------------------------------------------------------------
@SETTINGS
@given(st.lists(st.tuples(*[st.booleans()] * 5), min_size=1, max_size=64))
def test_masked_and_matches_plain_and(batch):
    a, b, x, y, z = (np.array(column) for column in zip(*batch))
    masked = np.array([reference_masked_and(int(ai), int(bi), int(xi), int(yi),
                                            int(zi))
                       for ai, bi, xi, yi, zi in batch], dtype=bool)
    np.testing.assert_array_equal(masked ^ z, a & b)


@SETTINGS
@given(st.lists(st.tuples(*[st.booleans()] * 5), min_size=1, max_size=64))
def test_masked_or_matches_plain_or(batch):
    a, b, x, y, z = (np.array(column) for column in zip(*batch))
    masked = np.array([reference_masked_or(int(ai), int(bi), int(xi), int(yi),
                                           int(zi))
                       for ai, bi, xi, yi, zi in batch], dtype=bool)
    np.testing.assert_array_equal(masked ^ z, a | b)


@SETTINGS
@given(st.lists(st.tuples(*[st.booleans()] * 4), min_size=1, max_size=64))
def test_masked_xor_matches_plain_xor(batch):
    a, b, x, y = (np.array(column) for column in zip(*batch))
    masked = np.array([reference_masked_xor(int(ai), int(bi), int(xi), int(yi))
                       for ai, bi, xi, yi in batch], dtype=bool)
    np.testing.assert_array_equal(masked ^ (x ^ y), a ^ b)


# ----------------------------------------------------------------------
# Generated netlists: structural invariants and I/O round-trip.
# ----------------------------------------------------------------------
@SETTINGS
@given(st.integers(min_value=10, max_value=120),
       st.integers(min_value=4, max_value=24),
       st.integers(min_value=0, max_value=10_000),
       st.sampled_from(["crypto", "control", "arithmetic", "random"]))
def test_generated_netlists_are_valid(n_gates, n_inputs, seed, profile):
    netlist = generate_random_logic(
        RandomLogicSpec(n_gates=n_gates, n_inputs=n_inputs, n_outputs=4,
                        profile=profile, seed=seed))
    report = validate_netlist(netlist)
    assert report.is_valid, report.errors
    assert len(netlist) == n_gates


@SETTINGS
@given(st.integers(min_value=10, max_value=80), st.integers(min_value=0, max_value=9999))
def test_bench_round_trip_preserves_structure(n_gates, seed):
    netlist = generate_random_logic(RandomLogicSpec(n_gates=n_gates, seed=seed))
    parsed = parse_bench(write_bench(netlist))
    assert len(parsed) == len(netlist)
    for gate in netlist.gates:
        assert parsed.driver_of(gate.output).gate_type is gate.gate_type
        assert parsed.driver_of(gate.output).inputs == gate.inputs


@SETTINGS
@given(st.integers(min_value=20, max_value=80),
       st.integers(min_value=0, max_value=9999),
       st.floats(min_value=0.0, max_value=1.0))
def test_masking_any_subset_preserves_function(n_gates, seed, fraction):
    netlist = generate_random_logic(RandomLogicSpec(n_gates=n_gates, seed=seed))
    candidates = maskable_gates(netlist)
    count = int(round(fraction * len(candidates)))
    masked = apply_masking(netlist, candidates[:count]).netlist
    assert functional_equivalent(netlist, masked, n_vectors=64, seed=seed)


# ----------------------------------------------------------------------
# Gate evaluation: De Morgan / involution identities on random vectors.
# ----------------------------------------------------------------------
@SETTINGS
@given(st.integers(min_value=1, max_value=256), st.integers(min_value=0, max_value=9999))
def test_de_morgan_identities(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, n).astype(bool)
    b = rng.integers(0, 2, n).astype(bool)
    nand = evaluate_gate(GateType.NAND, [a, b])
    expected = evaluate_gate(GateType.OR, [~a, ~b])
    np.testing.assert_array_equal(nand, expected)
    nor = evaluate_gate(GateType.NOR, [a, b])
    np.testing.assert_array_equal(nor, evaluate_gate(GateType.AND, [~a, ~b]))
    double_not = evaluate_gate(GateType.NOT, [evaluate_gate(GateType.NOT, [a])])
    np.testing.assert_array_equal(double_not, a)


# ----------------------------------------------------------------------
# One-pass moments equal two-pass statistics for arbitrary finite data.
# ----------------------------------------------------------------------
@SETTINGS
@given(st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
                min_size=2, max_size=300))
def test_one_pass_moments_match_numpy(values):
    samples = np.array(values, dtype=float)
    acc = OnePassMoments(max_order=2)
    acc.update_batch(samples)
    assert np.isclose(acc.mean, samples.mean(), rtol=1e-9, atol=1e-6)
    assert np.isclose(acc.variance, samples.var(ddof=1), rtol=1e-6, atol=1e-6)


@SETTINGS
@given(st.integers(min_value=5, max_value=200), st.integers(min_value=0, max_value=999))
def test_welch_t_is_antisymmetric(n, seed):
    rng = np.random.default_rng(seed)
    group0 = rng.normal(size=n)
    group1 = rng.normal(0.5, 2.0, size=n + 3)
    forward = welch_t_test(group0, group1)
    backward = welch_t_test(group1, group0)
    assert np.isclose(float(forward.t_statistic), -float(backward.t_statistic))
    assert np.isclose(float(forward.degrees_of_freedom),
                      float(backward.degrees_of_freedom))


# ----------------------------------------------------------------------
# SHAP efficiency: attributions always sum to prediction minus base value.
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=9999))
def test_shap_efficiency_property(seed):
    rng = np.random.default_rng(seed)
    features = rng.integers(0, 2, size=(150, 5)).astype(float)
    labels = ((features[:, 0] == 1) | (features[:, 1] == 0)).astype(int)
    if len(np.unique(labels)) < 2:
        return
    model = DecisionTreeClassifier(max_depth=3).fit(features, labels)
    tree_explainer = TreeShapExplainer(model)
    kernel_explainer = KernelShapExplainer(model.positive_score, features[:30])
    sample = features[int(rng.integers(0, features.shape[0]))]
    assert tree_explainer.explain(sample).additivity_gap < 1e-8
    assert kernel_explainer.explain(sample).additivity_gap < 1e-5


# ----------------------------------------------------------------------
# OnePassMoments.merge: the algebra the sharded TVLA drivers rely on.
# Seeded numpy data (hypothesis only picks seeds/shapes/splits) keeps the
# cases well-conditioned enough for the ~1e-12 equality contract.
# ----------------------------------------------------------------------
def _moments_from(samples, max_order, shape):
    acc = OnePassMoments(max_order=max_order, shape=shape)
    acc.update_batch(samples)
    return acc


def _random_parts(seed, n_parts, shape):
    rng = np.random.default_rng(seed)
    parts = []
    for _ in range(n_parts):
        size = int(rng.integers(2, 60))
        loc = float(rng.uniform(-2.0, 2.0))
        scale = float(rng.uniform(0.5, 2.0))
        parts.append(rng.normal(loc, scale, size=(size,) + shape))
    return parts


def _assert_moments_equal(actual, expected, rtol=1e-12):
    assert actual.count == expected.count
    np.testing.assert_allclose(actual.mean, expected.mean,
                               rtol=rtol, atol=1e-12)
    for order in range(2, expected.max_order + 1):
        np.testing.assert_allclose(actual.central_moment(order),
                                   expected.central_moment(order),
                                   rtol=rtol, atol=1e-12)


MERGE_SETTINGS = settings(max_examples=40, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])


@MERGE_SETTINGS
@given(st.integers(min_value=0, max_value=99999),
       st.integers(min_value=2, max_value=4),
       st.sampled_from([(), (3,), (2, 4)]),
       st.integers(min_value=2, max_value=4))
def test_merge_matches_concatenated_update(seed, max_order, shape, n_parts):
    parts = _random_parts(seed, n_parts, shape)
    merged = _moments_from(parts[0], max_order, shape)
    for part in parts[1:]:
        merged = merged.merge(_moments_from(part, max_order, shape))
    reference = _moments_from(np.concatenate(parts), max_order, shape)
    _assert_moments_equal(merged, reference)


@MERGE_SETTINGS
@given(st.integers(min_value=0, max_value=99999),
       st.integers(min_value=2, max_value=4),
       st.sampled_from([(), (3,)]),
       st.permutations(list(range(4))))
def test_merge_is_order_invariant(seed, max_order, shape, order):
    parts = _random_parts(seed, 4, shape)
    accumulators = [_moments_from(part, max_order, shape) for part in parts]

    def fold(indices):
        result = accumulators[indices[0]]
        for index in indices[1:]:
            result = result.merge(accumulators[index])
        return result

    _assert_moments_equal(fold(list(order)), fold(list(range(4))))


@MERGE_SETTINGS
@given(st.integers(min_value=0, max_value=99999),
       st.integers(min_value=2, max_value=4),
       st.sampled_from([(), (3,)]))
def test_merge_is_associative(seed, max_order, shape):
    a, b, c = (_moments_from(part, max_order, shape)
               for part in _random_parts(seed, 3, shape))
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    _assert_moments_equal(left, right)


@MERGE_SETTINGS
@given(st.integers(min_value=0, max_value=99999),
       st.integers(min_value=2, max_value=4))
def test_merge_with_empty_is_identity(seed, max_order):
    samples = _random_parts(seed, 1, ())[0]
    acc = _moments_from(samples, max_order, ())
    empty = OnePassMoments(max_order=max_order)
    _assert_moments_equal(acc.merge(empty), acc)
    _assert_moments_equal(empty.merge(acc), acc)
