"""Tests for the live assessment service (`repro.service`).

The contracts pinned here:

* the wire codec is canonical (same message -> same bytes), versioned,
  and **strict**: unknown types, version skew, missing and stray body
  fields are all hard protocol errors — no silently-ignored keys;
* tenant ids are path/key-safe by construction, and two tenants
  submitting the *same* spec into the shared queue get disjoint tasks;
* the server folds streamed shard partials in global shard order, so the
  progress frame emitted after the final partial carries t-values
  **bitwise equal** to the batch ``collect_result`` — under both the
  counter and the sequence sampler, and under faults (a worker SIGKILLed
  mid-shard, completion via lease expiry, a worker renewing its lease
  past the original expiry).
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import (
    TaskQueue,
    campaign_queue,
    collect_result,
    run_campaign,
    submit_campaign,
)
from repro.campaign.serialize import decode_array
from repro.campaign.spec import CampaignSpec
from repro.netlist.benchmarks import load_benchmark
from repro.service import (
    AssessmentService,
    CampaignAccepted,
    CampaignComplete,
    CampaignProgress,
    ProtocolError,
    ServiceClient,
    ServiceError,
    ShardPartial,
    SubmitCampaign,
    WorkerHeartbeat,
    decode_message,
    encode_message,
    read_frames,
    run_service_worker,
    tenant_key_prefix,
    tenant_of_root,
    tenant_root,
    validate_tenant,
)
from repro.tvla import TvlaConfig

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

#: 240 traces in 48-trace chunks -> 5 chunks; 3 shards split 2/2/1.
SERVICE_TVLA = dict(n_traces=240, n_fixed_classes=2, seed=7,
                    chunk_traces=48, streaming=True)


def _spec(sampler: str = "counter", n_shards: int = 3) -> CampaignSpec:
    netlist = load_benchmark("des3", scale=0.25, seed=99)
    config = TvlaConfig(sampler=sampler, **SERVICE_TVLA)
    return CampaignSpec.from_netlist(netlist, config, n_shards=n_shards,
                                     force_streaming=True)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_round_trip_every_message_type(self):
        messages = [
            SubmitCampaign(tenant="t", spec_json="{}", follow=False),
            CampaignAccepted(tenant="t", spec_hash="h", status="submitted",
                             n_shards_total=3, n_shards_done=0,
                             n_enqueued=3),
            ShardPartial(tenant="t", spec_hash="h", shard_index=1,
                         payload_b64=base64.b64encode(b"xyz").decode(),
                         worker="w1"),
            CampaignProgress(tenant="t", spec_hash="h", n_shards_total=3,
                             shards_done=(0, 2), t_values={},
                             order_t_values={}, max_abs_t=1.25,
                             leaking_gates=("g1",)),
            WorkerHeartbeat(worker="w1", tenant="t", task_id=7,
                            renewals=2, busy=True),
            CampaignComplete(tenant="t", spec_hash="h",
                             assessment={"design_name": "d"}),
            ServiceError(code="bad-spec", message="nope"),
        ]
        for message in messages:
            assert decode_message(encode_message(message)) == message

    def test_encoding_is_canonical(self):
        message = WorkerHeartbeat(worker="w", tenant="t")
        assert encode_message(message) == encode_message(message)
        # Sorted keys + compact separators: the byte layout is pinned.
        frame = encode_message(ServiceError(code="c", message="m"))
        assert frame == (b'{"body":{"code":"c","message":"m"},'
                         b'"type":"ServiceError","v":1}\n')

    def test_version_skew_is_rejected(self):
        frame = json.dumps({"v": 2, "type": "ServiceError",
                            "body": {"code": "c", "message": "m"}})
        with pytest.raises(ProtocolError, match="version"):
            decode_message(frame)

    def test_unknown_type_is_rejected(self):
        frame = json.dumps({"v": 1, "type": "Nope", "body": {}})
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_message(frame)

    def test_missing_and_stray_fields_are_rejected(self):
        with pytest.raises(ProtocolError, match="missing=\\['message'\\]"):
            decode_message(json.dumps(
                {"v": 1, "type": "ServiceError", "body": {"code": "c"}}))
        with pytest.raises(ProtocolError, match="unexpected=\\['extra'\\]"):
            decode_message(json.dumps(
                {"v": 1, "type": "ServiceError",
                 "body": {"code": "c", "message": "m", "extra": 1}}))

    def test_malformed_json_is_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_message(b"{nope")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1,2]")

    def test_read_frames_buffers_partial_lines(self):
        one = encode_message(ServiceError(code="a", message="1"))
        two = encode_message(ServiceError(code="b", message="2"))
        frames, rest = read_frames(one + two[:5])
        assert [f.code for f in frames] == ["a"]
        assert rest == two[:5]
        frames, rest = read_frames(rest + two[5:])
        assert [f.code for f in frames] == ["b"]
        assert rest == b""

    def test_tenant_validation(self):
        assert validate_tenant("lab-7_x") == "lab-7_x"
        for bad in ("", "-lead", "a/b", "a b", "x" * 65, "sneaky\n"):
            with pytest.raises(ProtocolError, match="invalid tenant"):
                validate_tenant(bad)

    def test_tenant_paths_and_prefixes(self, tmp_path):
        root = tenant_root(tmp_path, "lab")
        assert root == tmp_path / "tenants" / "lab"
        assert tenant_key_prefix("lab") == "tenant:lab:"
        assert tenant_of_root(root) == "lab"
        assert tenant_of_root(tmp_path / "plain") == "default"


# ----------------------------------------------------------------------
# Server fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def service(tmp_path):
    """A live AssessmentService on a background event loop thread."""
    holder = {}
    started = threading.Event()

    def run():
        async def main():
            server = AssessmentService(tmp_path / "svc",
                                       monitor_interval=0.1,
                                       flatline_after=0.5)
            await server.start()
            holder["server"] = server
            holder["stop"] = asyncio.Event()
            started.set()
            await holder["stop"].wait()
            await server.stop()
        loop = asyncio.new_event_loop()
        holder["loop"] = loop
        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "service failed to start"
    yield holder["server"]
    holder["loop"].call_soon_threadsafe(holder["stop"].set)
    thread.join(10)


def _drain_until_complete(client, timeout=120.0):
    """Collect (progress_frames, complete_frame) from a follow stream."""
    progress = []
    for frame in client.events(timeout=timeout):
        if isinstance(frame, CampaignProgress):
            progress.append(frame)
        elif isinstance(frame, CampaignComplete):
            return progress, frame
        elif isinstance(frame, ServiceError):
            raise AssertionError(f"service error: {frame}")
    raise AssertionError("stream ended before completion")


# ----------------------------------------------------------------------
# Server behaviour
# ----------------------------------------------------------------------
class TestServer:
    def test_submit_accepts_and_enqueues(self, service):
        spec = _spec()
        with ServiceClient(service.host, service.port) as client:
            accepted = client.submit("lab", spec.to_json(), follow=False)
        assert isinstance(accepted, CampaignAccepted)
        assert accepted.status == "submitted"
        assert accepted.spec_hash == spec.content_hash
        assert accepted.n_enqueued == 3
        # The shard tasks landed in the *shared* queue under tenant keys.
        assert service.queue.counts()["pending"] == 3

    def test_two_tenants_same_spec_get_disjoint_tasks(self, service):
        spec = _spec()
        with ServiceClient(service.host, service.port) as client:
            first = client.submit("alice", spec.to_json(), follow=False)
            second = client.submit("bob", spec.to_json(), follow=False)
        assert first.n_enqueued == second.n_enqueued == 3
        assert service.queue.counts()["pending"] == 6
        # Same tenant resubmitting dedupes via idempotent keys.
        with ServiceClient(service.host, service.port) as client:
            again = client.submit("alice", spec.to_json(), follow=False)
        assert again.n_enqueued == 0
        assert service.queue.counts()["pending"] == 6

    def test_bad_tenant_is_rejected(self, service):
        with ServiceClient(service.host, service.port) as client:
            with pytest.raises(ProtocolError, match="bad-tenant"):
                client.submit("no/slashes", _spec().to_json())

    def test_bad_spec_is_rejected(self, service):
        with ServiceClient(service.host, service.port) as client:
            with pytest.raises(ProtocolError, match="bad-spec"):
                client.submit("lab", '{"not": "a spec"}')

    def test_undecodable_frame_gets_error_reply(self, service):
        with ServiceClient(service.host, service.port) as client:
            client._sock.sendall(b"this is not json\n")
            reply = client.recv(timeout=10)
        assert isinstance(reply, ServiceError)
        assert reply.code == "bad-frame"

    def test_watch_unknown_campaign_errors(self, service):
        with ServiceClient(service.host, service.port) as client:
            client.watch("lab", "f" * 64)
            reply = client.recv(timeout=10)
        assert isinstance(reply, ServiceError)
        assert reply.code == "unknown-campaign"

    def test_heartbeats_feed_flatline_tracking(self, service):
        with ServiceClient(service.host, service.port) as client:
            client.send(WorkerHeartbeat(worker="w-alive"))
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if "w-alive" in service._heartbeats:
                    break
                time.sleep(0.02)
        assert "w-alive" in service._heartbeats
        assert service.flatlined_workers() == ()
        time.sleep(0.6)  # > flatline_after=0.5
        assert service.flatlined_workers() == ("w-alive",)

    def test_monitor_absorbs_disk_only_partials(self, service):
        # A plain (non-streaming) worker writes checkpoints straight to
        # disk; the monitor rescan must fold them and complete the
        # campaign without a single ShardPartial frame.
        spec = _spec()
        with ServiceClient(service.host, service.port) as client:
            client.submit("lab", spec.to_json(), follow=True)
            queue = service.queue
            from repro.campaign import run_worker
            run_worker(queue, worker="plain", drain=True)
            progress, complete = _drain_until_complete(client)
        assert complete.spec_hash == spec.content_hash
        assert progress[-1].shards_done == (0, 1, 2)


# ----------------------------------------------------------------------
# End-to-end: faults + bitwise-equal streamed t-values, both samplers
# ----------------------------------------------------------------------
class TestEndToEndStreaming:
    @pytest.mark.parametrize("sampler", ["counter", "sequence"])
    def test_streamed_t_values_bitwise_equal_collect(
            self, service, tmp_path, monkeypatch, sampler):
        """The acceptance scenario: one worker SIGKILLed mid-shard, one
        renewing past its original lease; the final progress frame is
        bitwise equal to ``polaris-campaign result``."""
        monkeypatch.setenv("POLARIS_SHARD_DELAY", "0.9")
        spec = _spec(sampler=sampler)
        tenant = "lab"
        shared_root = service.root

        with ServiceClient(service.host, service.port) as client:
            accepted = client.submit(tenant, spec.to_json(), follow=True)
            assert accepted.n_enqueued == 3

            # Doomed worker: claims one shard (lease 0.7s, shard takes
            # ~0.9s, no renewal) and is SIGKILLed mid-shard; its lease
            # expires and the shard is redelivered.
            doomed = subprocess.Popen(
                [sys.executable, "-m", "repro.campaign.cli", "work",
                 "--root", str(shared_root), "--max-tasks", "1",
                 "--lease-seconds", "0.7", "--no-renew"],
                env={**os.environ, "PYTHONPATH": SRC_DIR,
                     "POLARIS_SHARD_DELAY": "0.9"},
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if service.queue.counts()["leased"] >= 1:
                    break
                time.sleep(0.02)
            assert service.queue.counts()["leased"] >= 1, \
                "doomed worker never claimed a shard"
            time.sleep(0.3)  # well inside its 0.9s shard
            doomed.kill()
            doomed.wait(10)

            # Survivor: a service worker on a 0.5s lease — shorter than
            # one shard, so it *must* renew past the original expiry.
            executed = run_service_worker(
                shared_root, service.host, service.port,
                worker="survivor", drain=True, lease_seconds=0.5)
            assert executed >= 3  # all shards (incl. the reclaimed one)

            progress, complete = _drain_until_complete(client)

        # Every shard reported; the last frame saw all of them.
        final = progress[-1]
        assert final.shards_done == (0, 1, 2)
        assert final.n_shards_total == 3

        # The survivor really did renew a lease past its original span.
        queue = service.queue
        renewals = []
        for task_id in range(1, 4):
            info = queue.lease_info(task_id)
            assert info is not None and info["status"] == "done"
            renewals.append(info["renewals"])
        assert max(renewals) >= 1

        # Streamed == collected, bitwise, and cross-checked against an
        # undisturbed single-process campaign of the same layout.
        troot = tenant_root(shared_root, tenant)
        collected = collect_result(
            troot, spec.content_hash, timeout=30,
            queue=campaign_queue(shared_root),
            shard_key_prefix=tenant_key_prefix(tenant))
        streamed_t = decode_array(final.t_values)
        assert np.array_equal(streamed_t, collected.t_values)
        assert streamed_t.dtype == collected.t_values.dtype

        from repro.campaign.serialize import assessment_from_dict
        complete_assessment = assessment_from_dict(complete.assessment)
        assert np.array_equal(complete_assessment.t_values,
                              collected.t_values)
        assert np.array_equal(complete_assessment.degrees_of_freedom,
                              collected.degrees_of_freedom)

        monkeypatch.delenv("POLARIS_SHARD_DELAY")
        clean = run_campaign(tmp_path / "clean", spec.netlist(),
                             spec.tvla, n_shards=3)
        assert np.array_equal(collected.t_values, clean.t_values)


# ----------------------------------------------------------------------
# Service worker plumbing
# ----------------------------------------------------------------------
class TestServiceWorker:
    def test_worker_streams_partials_and_heartbeats(self, service):
        spec = _spec(n_shards=2)
        with ServiceClient(service.host, service.port) as client:
            client.submit("lab", spec.to_json(), follow=True)
            executed = run_service_worker(
                service.root, service.host, service.port,
                worker="streamer", drain=True, heartbeat_interval=0.05)
            assert executed == 2
            progress, complete = _drain_until_complete(client)
        # Partials were *streamed* (progress preceded the disk rescan
        # interval) and the beacon registered the worker.
        assert [len(frame.shards_done) for frame in progress][-1] == 2
        assert "streamer" in service._heartbeats

    def test_worker_survives_dead_server(self, tmp_path, service):
        # Killing the service must not take the fleet down: with the
        # endpoint gone the client raises on connect, which the CLI
        # would surface — but an already-connected worker keeps draining
        # (sends are swallowed as observational).
        spec = _spec(n_shards=2)
        troot = tenant_root(service.root, "lab")
        submit_campaign(troot, spec=spec, queue=service.queue,
                        shard_key_prefix=tenant_key_prefix("lab"))
        client = ServiceClient(service.host, service.port)
        client.close()  # worker-side connection loss, not server death
        executed = run_service_worker(
            service.root, service.host, service.port,
            worker="stoic", drain=True)
        assert executed == 2
