"""Tests for the CART decision trees (classifier and regressor)."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    LEAF,
    NotFittedError,
)


def _xor_dataset(rng, n=400):
    features = rng.integers(0, 2, size=(n, 2)).astype(float)
    labels = (features[:, 0].astype(int) ^ features[:, 1].astype(int))
    return features, labels


class TestDecisionTreeClassifier:
    def test_learns_xor(self, rng):
        features, labels = _xor_dataset(rng)
        tree = DecisionTreeClassifier(max_depth=3).fit(features, labels)
        assert tree.score(features, labels) == 1.0

    def test_predict_proba_rows_sum_to_one(self, rng):
        features = rng.normal(size=(200, 5))
        labels = (features[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        proba = tree.predict_proba(features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert proba.shape == (200, 2)

    def test_max_depth_respected(self, rng):
        features = rng.normal(size=(300, 6))
        labels = (features[:, 0] * features[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=2).fit(features, labels)
        assert tree.tree_.max_depth <= 2

    def test_min_samples_leaf_respected(self, rng):
        features = rng.normal(size=(100, 3))
        labels = (features[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(features, labels)
        leaf_covers = [node.cover for node in tree.tree_.nodes if node.is_leaf]
        assert min(leaf_covers) * 100 >= 20 - 1e-9  # weights are normalised

    def test_min_samples_leaf_does_not_discard_feature(self):
        # Regression: when a feature's *best* split violated
        # min_samples_leaf, the whole feature was silently skipped even
        # though a slightly worse split on it was legal.  Here the optimal
        # split (x <= 0.5) strands one sample, but x <= 1.5 still reduces
        # impurity and must be chosen instead of growing no tree at all.
        features = np.arange(8, dtype=float).reshape(-1, 1)
        labels = np.array([1, 0, 0, 0, 0, 0, 0, 0])
        tree = DecisionTreeClassifier(min_samples_leaf=2).fit(features, labels)
        assert len(tree.tree_.nodes) == 3
        assert tree.tree_.nodes[0].threshold == pytest.approx(1.5)

    def test_pure_node_becomes_leaf(self):
        features = np.array([[0.0], [1.0], [2.0], [3.0]])
        labels = np.array([1, 1, 1, 1])
        tree = DecisionTreeClassifier().fit(features, labels)
        assert len(tree.tree_.nodes) == 1
        assert tree.tree_.nodes[0].feature == LEAF

    def test_sample_weight_changes_decision(self):
        features = np.array([[0.0], [1.0], [2.0], [3.0]])
        labels = np.array([0, 0, 1, 1])
        # Heavily weight the first sample as class 1 -> prediction shifts.
        weights = np.array([10.0, 0.1, 0.1, 0.1])
        tree = DecisionTreeClassifier(max_depth=1).fit(
            features, np.array([1, 0, 1, 1]), sample_weight=weights)
        assert tree.predict(np.array([[0.0]]))[0] == 1

    def test_feature_importances_sum_to_one(self, rng):
        features = rng.normal(size=(300, 4))
        labels = (features[:, 2] > 0.3).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        importances = tree.feature_importances_
        assert importances.sum() == pytest.approx(1.0)
        assert importances.argmax() == 2

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict_proba(np.zeros((1, 2)))

    def test_non_binary_labels_supported(self, rng):
        features = rng.normal(size=(300, 2))
        labels = np.digitize(features[:, 0], [-0.5, 0.5])
        tree = DecisionTreeClassifier(max_depth=3).fit(features, labels)
        assert set(np.unique(tree.predict(features))) <= {0, 1, 2}
        assert tree.score(features, labels) > 0.9

    def test_decision_path_starts_at_root_ends_at_leaf(self, rng):
        features, labels = _xor_dataset(rng)
        tree = DecisionTreeClassifier(max_depth=3).fit(features, labels)
        path = tree.tree_.decision_path(features[0])
        assert path[0] == 0
        assert tree.tree_.nodes[path[-1]].is_leaf


class TestDecisionTreeRegressor:
    def test_fits_piecewise_constant_target(self, rng):
        features = rng.uniform(-1, 1, size=(500, 1))
        targets = np.where(features[:, 0] > 0, 2.0, -1.0)
        reg = DecisionTreeRegressor(max_depth=2).fit(features, targets)
        predictions = reg.predict(features)
        assert np.abs(predictions - targets).max() < 0.2

    def test_reduces_error_with_depth(self, rng):
        features = rng.uniform(-2, 2, size=(600, 2))
        targets = features[:, 0] ** 2 + features[:, 1]
        shallow = DecisionTreeRegressor(max_depth=2).fit(features, targets)
        deep = DecisionTreeRegressor(max_depth=6).fit(features, targets)
        err_shallow = np.mean((shallow.predict(features) - targets) ** 2)
        err_deep = np.mean((deep.predict(features) - targets) ** 2)
        assert err_deep < err_shallow

    def test_target_shape_validated(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(rng.normal(size=(10, 2)), np.zeros(5))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_feature_importances_identify_informative_column(self, rng):
        features = rng.normal(size=(400, 3))
        targets = 3.0 * features[:, 1]
        reg = DecisionTreeRegressor(max_depth=4).fit(features, targets)
        assert reg.feature_importances_.argmax() == 1
