"""Tests for vectorised gate evaluation."""

import numpy as np
import pytest

from repro.netlist import GateType
from repro.simulation import evaluate_gate, gate_truth_table


class TestEvaluateGate:
    def test_basic_gates_match_python_operators(self, rng):
        a = rng.integers(0, 2, 64).astype(bool)
        b = rng.integers(0, 2, 64).astype(bool)
        np.testing.assert_array_equal(evaluate_gate(GateType.AND, [a, b]), a & b)
        np.testing.assert_array_equal(evaluate_gate(GateType.OR, [a, b]), a | b)
        np.testing.assert_array_equal(evaluate_gate(GateType.XOR, [a, b]), a ^ b)
        np.testing.assert_array_equal(evaluate_gate(GateType.NAND, [a, b]), ~(a & b))
        np.testing.assert_array_equal(evaluate_gate(GateType.NOR, [a, b]), ~(a | b))
        np.testing.assert_array_equal(evaluate_gate(GateType.XNOR, [a, b]), ~(a ^ b))
        np.testing.assert_array_equal(evaluate_gate(GateType.NOT, [a]), ~a)
        np.testing.assert_array_equal(evaluate_gate(GateType.BUF, [a]), a)

    def test_multi_input_gates_reduce(self, rng):
        operands = [rng.integers(0, 2, 32).astype(bool) for _ in range(3)]
        expected = operands[0] & operands[1] & operands[2]
        np.testing.assert_array_equal(evaluate_gate(GateType.AND, operands), expected)

    def test_mux(self, rng):
        d0 = rng.integers(0, 2, 32).astype(bool)
        d1 = rng.integers(0, 2, 32).astype(bool)
        sel = rng.integers(0, 2, 32).astype(bool)
        expected = np.where(sel, d1, d0)
        np.testing.assert_array_equal(evaluate_gate(GateType.MUX, [d0, d1, sel]),
                                      expected)

    def test_masked_gates_compute_original_function(self, rng):
        a = rng.integers(0, 2, 32).astype(bool)
        b = rng.integers(0, 2, 32).astype(bool)
        r = rng.integers(0, 2, 32).astype(bool)
        np.testing.assert_array_equal(
            evaluate_gate(GateType.MASKED_AND, [a, b, r]), a & b)
        np.testing.assert_array_equal(
            evaluate_gate(GateType.MASKED_OR, [a, b, r]), a | b)
        np.testing.assert_array_equal(
            evaluate_gate(GateType.MASKED_XOR, [a, b]), a ^ b)

    def test_port_and_sequential_types_rejected(self):
        a = np.array([True, False])
        with pytest.raises(ValueError):
            evaluate_gate(GateType.DFF, [a])
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INPUT, [a])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            evaluate_gate(GateType.AND, [np.zeros(4, bool), np.zeros(5, bool)])

    def test_wrong_operand_count_rejected(self):
        a = np.zeros(4, bool)
        with pytest.raises(ValueError):
            evaluate_gate(GateType.NOT, [a, a])
        with pytest.raises(ValueError):
            evaluate_gate(GateType.MUX, [a, a])
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, [])


class TestTruthTables:
    def test_and_truth_table(self):
        table = gate_truth_table(GateType.AND, 2)
        np.testing.assert_array_equal(table, [False, False, False, True])

    def test_xor_truth_table(self):
        table = gate_truth_table(GateType.XOR, 2)
        np.testing.assert_array_equal(table, [False, True, True, False])

    def test_three_input_nor(self):
        table = gate_truth_table(GateType.NOR, 3)
        assert table[0] and not table[1:].any()
