"""Tests for the named benchmark registry."""

import pytest

from repro.netlist import (
    EVALUATION_SUITE,
    TRAINING_SUITE,
    benchmark_spec,
    list_benchmarks,
    load_benchmark,
    validate_netlist,
)


class TestRegistry:
    def test_suites_match_paper_design_lists(self):
        assert set(EVALUATION_SUITE) == {
            "des3", "arbiter", "sin", "md5", "voter", "square", "sqrt",
            "div", "memctrl", "multiplier", "log2",
        }
        assert len(TRAINING_SUITE) == 6
        assert all(name.startswith("c") for name in TRAINING_SUITE)

    def test_list_benchmarks_filtering(self):
        all_specs = list_benchmarks()
        training = list_benchmarks("training")
        evaluation = list_benchmarks("evaluation")
        assert len(all_specs) == len(training) + len(evaluation)
        assert all(s.suite == "training" for s in training)
        assert all(s.suite == "evaluation" for s in evaluation)

    def test_benchmark_spec_lookup(self):
        spec = benchmark_spec("des3")
        assert spec.suite == "evaluation"
        assert spec.profile == "crypto"
        with pytest.raises(KeyError, match="unknown benchmark"):
            benchmark_spec("nonexistent")


class TestLoading:
    @pytest.mark.parametrize("name", list(TRAINING_SUITE) + list(EVALUATION_SUITE))
    def test_every_benchmark_builds_and_validates(self, name):
        netlist = load_benchmark(name, scale=0.25, seed=7)
        assert netlist.name == name
        assert len(netlist) >= 20
        report = validate_netlist(netlist)
        assert report.is_valid, report.errors

    def test_deterministic_for_same_seed(self):
        first = load_benchmark("voter", scale=0.3, seed=11)
        second = load_benchmark("voter", scale=0.3, seed=11)
        assert len(first) == len(second)
        assert [g.name for g in first.gates] == [g.name for g in second.gates]

    def test_scale_changes_size(self):
        small = load_benchmark("log2", scale=0.2)
        large = load_benchmark("log2", scale=0.5)
        assert len(large) > len(small)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            load_benchmark("des3", scale=0.0)

    def test_largest_evaluation_design_is_log2(self):
        sizes = {name: len(load_benchmark(name, scale=0.3))
                 for name in ("des3", "arbiter", "log2")}
        assert sizes["log2"] > sizes["arbiter"]
        assert sizes["log2"] > sizes["des3"]
