"""Documentation stays honest: link and doctest checks in the tier-1 suite.

Mirrors the CI ``docs`` job (``tools/check_docs.py``): intra-repo links in
``README.md`` / ``docs/*.md`` must resolve, and the fenced doctest examples
must execute.  Running it here means a branch cannot break the docs and
still pass the default test run.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


def test_docs_exist_and_are_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text()
    for name in ("docs/architecture.md", "docs/performance.md"):
        assert (REPO_ROOT / name).exists(), f"{name} is missing"
        assert name in readme, f"README does not link {name}"


def test_no_broken_links():
    checker = _load_checker()
    errors = []
    for path in checker.doc_files():
        errors.extend(checker.check_links(path))
    assert not errors, "\n".join(errors)


def test_fenced_doctests_pass():
    checker = _load_checker()
    files = checker.doc_files()
    n_blocks = sum(len(checker.doctest_blocks(path)) for path in files)
    assert n_blocks >= 2, "expected doctest examples in the docs"
    errors = []
    for path in files:
        errors.extend(checker.check_doctests(path))
    assert not errors, "\n".join(errors)
