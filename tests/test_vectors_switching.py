"""Tests for stimulus campaigns and switching-activity analysis."""

import numpy as np
import pytest

from repro.simulation import (
    LogicSimulator,
    design_switching_summary,
    fixed_vector,
    fixed_vs_fixed_campaigns,
    fixed_vs_random_campaigns,
    input_matrix_to_dict,
    random_vectors,
    switching_activity,
    toggle_counts,
    toggle_matrix,
)


class TestVectorGeneration:
    def test_random_vectors_shape_and_range(self, rng):
        matrix = random_vectors(50, 8, rng)
        assert matrix.shape == (50, 8)
        assert matrix.dtype == bool

    def test_random_vectors_validation(self):
        with pytest.raises(ValueError):
            random_vectors(0, 4)
        with pytest.raises(ValueError):
            random_vectors(4, 0)

    def test_fixed_vector_deterministic(self):
        np.testing.assert_array_equal(fixed_vector(16, seed=3), fixed_vector(16, seed=3))
        assert not np.array_equal(fixed_vector(16, seed=3), fixed_vector(16, seed=4))

    def test_campaign_slice(self, tiny_netlist):
        fixed, rand = fixed_vs_random_campaigns(tiny_netlist, 20, seed=1)
        chunk = rand.slice(5, 12)
        assert chunk.n_traces == 7
        assert chunk.label == rand.label
        assert chunk.input_names == rand.input_names
        np.testing.assert_array_equal(chunk.previous, rand.previous[5:12])
        np.testing.assert_array_equal(chunk.current, rand.current[5:12])
        with pytest.raises(ValueError):
            rand.slice(5, 25)
        with pytest.raises(ValueError):
            rand.slice(-1, 4)

    def test_input_matrix_to_dict(self):
        matrix = np.array([[1, 0], [0, 1]], dtype=bool)
        result = input_matrix_to_dict(matrix, ["a", "b"])
        np.testing.assert_array_equal(result["a"], [True, False])
        with pytest.raises(ValueError):
            input_matrix_to_dict(matrix, ["a"])


class TestCampaigns:
    def test_fixed_vs_random_shapes(self, tiny_netlist):
        fixed, rand = fixed_vs_random_campaigns(tiny_netlist, 40, seed=1)
        assert fixed.n_traces == rand.n_traces == 40
        assert fixed.current.shape == (40, len(tiny_netlist.primary_inputs))
        assert fixed.input_names == tiny_netlist.primary_inputs

    def test_fixed_group_is_constant(self, tiny_netlist):
        fixed, _ = fixed_vs_random_campaigns(tiny_netlist, 30, seed=1)
        assert (fixed.current == fixed.current[0]).all()

    def test_random_group_varies(self, tiny_netlist):
        _, rand = fixed_vs_random_campaigns(tiny_netlist, 200, seed=1)
        assert not (rand.current == rand.current[0]).all()

    def test_fixed_precharge_toggle(self, tiny_netlist):
        fixed_pre, _ = fixed_vs_random_campaigns(tiny_netlist, 30, seed=1,
                                                 fixed_precharge=True)
        random_pre, _ = fixed_vs_random_campaigns(tiny_netlist, 30, seed=1,
                                                  fixed_precharge=False)
        assert (fixed_pre.previous == fixed_pre.previous[0]).all()
        assert not (random_pre.previous == random_pre.previous[0]).all()

    def test_fixed_vs_fixed_groups_differ(self, tiny_netlist):
        group_a, group_b = fixed_vs_fixed_campaigns(tiny_netlist, 20, seed=2)
        assert not np.array_equal(group_a.current[0], group_b.current[0])

    def test_too_few_traces_rejected(self, tiny_netlist):
        with pytest.raises(ValueError):
            fixed_vs_random_campaigns(tiny_netlist, 1)

    def test_as_dicts_round_trip(self, tiny_netlist):
        fixed, _ = fixed_vs_random_campaigns(tiny_netlist, 10, seed=0)
        previous, current = fixed.as_dicts()
        assert set(previous) == set(tiny_netlist.primary_inputs)
        np.testing.assert_array_equal(current["a"], fixed.current[:, 0])


class TestSwitching:
    def test_toggle_matrix_and_counts(self, tiny_netlist, rng):
        simulator = LogicSimulator(tiny_netlist)
        inputs = tiny_netlist.primary_inputs
        prev = {net: rng.integers(0, 2, 64).astype(bool) for net in inputs}
        cur = {net: rng.integers(0, 2, 64).astype(bool) for net in inputs}
        previous, current = simulator.evaluate(prev), simulator.evaluate(cur)
        matrix = toggle_matrix(tiny_netlist, previous, current)
        counts = toggle_counts(tiny_netlist, previous, current)
        for name, toggles in matrix.items():
            assert toggles.shape == (64,)
            assert counts[name] == int(toggles.sum())

    def test_identical_batches_have_zero_toggles(self, tiny_netlist, rng):
        simulator = LogicSimulator(tiny_netlist)
        stimulus = {net: rng.integers(0, 2, 32).astype(bool)
                    for net in tiny_netlist.primary_inputs}
        result = simulator.evaluate(stimulus)
        counts = toggle_counts(tiny_netlist, result, result)
        assert all(count == 0 for count in counts.values())

    def test_mismatched_batch_sizes_rejected(self, tiny_netlist, rng):
        simulator = LogicSimulator(tiny_netlist)
        small = {net: rng.integers(0, 2, 8).astype(bool)
                 for net in tiny_netlist.primary_inputs}
        large = {net: rng.integers(0, 2, 16).astype(bool)
                 for net in tiny_netlist.primary_inputs}
        with pytest.raises(ValueError):
            toggle_matrix(tiny_netlist, simulator.evaluate(small),
                          simulator.evaluate(large))

    def test_switching_activity_bounds_and_summary(self, tiny_netlist, rng):
        simulator = LogicSimulator(tiny_netlist)
        inputs = tiny_netlist.primary_inputs
        prev = {net: rng.integers(0, 2, 128).astype(bool) for net in inputs}
        cur = {net: rng.integers(0, 2, 128).astype(bool) for net in inputs}
        activity = switching_activity(tiny_netlist, simulator.evaluate(prev),
                                      simulator.evaluate(cur))
        assert all(0.0 <= value <= 1.0 for value in activity.values())
        summary = design_switching_summary(activity)
        assert summary["min"] <= summary["mean"] <= summary["max"]
        assert design_switching_summary({}) == {"mean": 0.0, "max": 0.0,
                                                "min": 0.0, "total": 0.0}
