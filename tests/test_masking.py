"""Tests for masked gate definitions and the masking transform."""

import itertools

import pytest

from repro.masking import (
    MASKED_GATE_SPECS,
    apply_masking,
    mask_fraction,
    maskable_gates,
    masked_type_for,
    needs_output_inverter,
    reference_masked_and,
    reference_masked_or,
    reference_masked_xor,
    spec_for_masked_type,
    unmasked_equivalent_types,
)
from repro.netlist import GateType, validate_netlist
from repro.simulation import functional_equivalent


class TestMaskedGateConstructions:
    def test_trichina_masked_and_is_correct_for_all_inputs(self):
        # Eq. (5) of the paper: the masked output must equal (a & b) ^ z for
        # every combination of data bits and mask bits.
        for a, b, x, y, z in itertools.product([0, 1], repeat=5):
            assert reference_masked_and(a, b, x, y, z) == (a & b) ^ z

    def test_masked_or_is_correct_for_all_inputs(self):
        for a, b, x, y, z in itertools.product([0, 1], repeat=5):
            assert reference_masked_or(a, b, x, y, z) == (a | b) ^ z

    def test_masked_xor_is_correct_for_all_inputs(self):
        for a, b, x, y in itertools.product([0, 1], repeat=4):
            assert reference_masked_xor(a, b, x, y) == (a ^ b) ^ (x ^ y)

    def test_spec_registry_consistency(self):
        for masked_type, spec in MASKED_GATE_SPECS.items():
            assert spec.masked_type is masked_type
            assert spec.fresh_random_bits >= 1
            assert spec.internal_nodes >= 2
            assert all(t.is_combinational for t in spec.replaces)
        assert spec_for_masked_type(GateType.MASKED_AND).internal_nodes == 10

    def test_masked_type_for_mapping(self):
        assert masked_type_for(GateType.AND) is GateType.MASKED_AND
        assert masked_type_for(GateType.NAND) is GateType.MASKED_AND
        assert masked_type_for(GateType.NOR) is GateType.MASKED_OR
        assert masked_type_for(GateType.XNOR) is GateType.MASKED_XOR
        assert masked_type_for(GateType.AND, use_dom=True) is GateType.MASKED_AND_DOM
        with pytest.raises(ValueError):
            masked_type_for(GateType.NOT)

    def test_output_inverter_needed_only_for_inverting_gates(self):
        assert needs_output_inverter(GateType.NAND)
        assert needs_output_inverter(GateType.NOR)
        assert needs_output_inverter(GateType.XNOR)
        assert not needs_output_inverter(GateType.AND)


class TestMaskingTransform:
    def test_maskable_gates_excludes_inverters_and_ffs(self, sequential_netlist):
        candidates = maskable_gates(sequential_netlist)
        assert "ff" not in candidates
        assert "g_xor" in candidates

    def test_apply_masking_replaces_types(self, tiny_netlist):
        result = apply_masking(tiny_netlist, ["g_and", "g_nand"])
        assert result.n_masked == 2
        masked = result.netlist
        assert masked.gate("g_and").gate_type is GateType.MASKED_AND
        assert masked.gate("g_nand").gate_type is GateType.MASKED_AND
        assert masked.gate("g_nand").attributes["inverted_output"] is True
        assert masked.gate("g_and").attributes["inverted_output"] is False
        # Untouched gates keep their types.
        assert masked.gate("g_or").gate_type is GateType.OR

    def test_original_netlist_not_modified(self, tiny_netlist):
        apply_masking(tiny_netlist, ["g_and"])
        assert tiny_netlist.gate("g_and").gate_type is GateType.AND

    def test_masking_preserves_functionality(self, random_netlist):
        result = apply_masking(random_netlist, maskable_gates(random_netlist))
        assert functional_equivalent(random_netlist, result.netlist, n_vectors=512)
        assert validate_netlist(result.netlist).is_valid

    def test_dom_masking_preserves_functionality(self, random_netlist):
        result = apply_masking(random_netlist, maskable_gates(random_netlist),
                               use_dom=True)
        assert functional_equivalent(random_netlist, result.netlist, n_vectors=256)
        assert any(g.gate_type is GateType.MASKED_AND_DOM
                   for g in result.netlist.gates)

    def test_unknown_and_unmaskable_gates_skipped(self, sequential_netlist):
        result = apply_masking(sequential_netlist, ["ff", "ghost", "g_xor"])
        assert result.n_masked == 1
        reasons = dict(result.skipped_gates)
        assert "ghost" in reasons and "unknown" in reasons["ghost"]
        assert "ff" in reasons

    def test_double_masking_skipped(self, tiny_netlist):
        once = apply_masking(tiny_netlist, ["g_and"]).netlist
        twice = apply_masking(once, ["g_and"])
        assert twice.n_masked == 0
        assert any("already masked" in reason for _, reason in twice.skipped_gates)

    def test_protection_style_and_scale_recorded(self, tiny_netlist):
        result = apply_masking(tiny_netlist, ["g_and"],
                               protection_style="valiant", overhead_scale=1.5)
        gate = result.netlist.gate("g_and")
        assert gate.attributes["protection_style"] == "valiant"
        assert gate.attributes["overhead_scale"] == 1.5

    def test_unmasked_equivalent_types(self, tiny_netlist):
        masked = apply_masking(tiny_netlist, ["g_and", "g_xor"]).netlist
        mapping = unmasked_equivalent_types(masked)
        assert mapping == {"g_and": "AND", "g_xor": "XOR"}


class TestMaskFraction:
    def test_zero_and_full_fraction(self, random_netlist):
        zero = mask_fraction(random_netlist, 0.0)
        full = mask_fraction(random_netlist, 1.0)
        assert zero.n_masked == 0
        assert full.n_masked == len(maskable_gates(random_netlist))

    def test_half_fraction_uses_ranking_order(self, random_netlist):
        ranked = list(maskable_gates(random_netlist))
        half = mask_fraction(random_netlist, 0.5, ranked_gates=ranked)
        expected = set(ranked[:int(round(len(ranked) * 0.5))])
        assert set(half.masked_gates) == expected

    def test_invalid_fraction_rejected(self, random_netlist):
        with pytest.raises(ValueError):
            mask_fraction(random_netlist, 1.5)
