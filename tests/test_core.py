"""Tests for the POLARIS core: config, cognition, masking, pipeline, reporting."""

import numpy as np
import pytest

from repro.core import (
    ExperimentRecord,
    ExperimentRecorder,
    ModelConfig,
    PolarisConfig,
    build_model,
    format_markdown_table,
    format_table,
    generate_cognition,
    leakage_reduction_ratio,
    paper_configuration,
    polaris_mask,
    protect_design,
    rank_gates,
    rows_from_dicts,
    train_masking_model,
)
from repro.features import Dataset
from repro.ml import AdaBoostClassifier, GradientBoostingClassifier, RandomForestClassifier
from repro.netlist import GateType, load_benchmark, validate_netlist
from repro.simulation import functional_equivalent
from repro.tvla import assess_leakage
from repro.workloads import WorkloadConfig, training_designs


class TestConfig:
    def test_defaults_follow_paper(self):
        config = paper_configuration()
        assert config.msize == 200
        assert config.locality == 7
        assert config.iterations == 100
        assert config.theta_r == pytest.approx(0.70)
        assert config.tvla.n_traces == 10_000
        assert config.model.model_type == "adaboost"
        assert config.model.learning_rate == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolarisConfig(msize=0)
        with pytest.raises(ValueError):
            PolarisConfig(theta_r=0.0)
        with pytest.raises(ValueError):
            PolarisConfig(rule_weight=2.0)
        with pytest.raises(ValueError):
            ModelConfig(model_type="svm")

    def test_with_model_switches_family(self):
        base = PolarisConfig()
        rf = base.with_model("random_forest")
        assert rf.model.model_type == "random_forest"
        assert rf.model.use_smote is True
        xgb = base.with_model("xgboost")
        assert xgb.model.model_type == "xgboost"
        assert xgb.model.class_weighted is True

    def test_build_model_types(self):
        assert isinstance(build_model(ModelConfig(model_type="adaboost")),
                          AdaBoostClassifier)
        assert isinstance(build_model(ModelConfig(model_type="xgboost")),
                          GradientBoostingClassifier)
        assert isinstance(build_model(ModelConfig(model_type="random_forest")),
                          RandomForestClassifier)


class TestCognition:
    def test_leakage_reduction_ratio(self):
        assert leakage_reduction_ratio(2.0, 0.5) == pytest.approx(0.75)
        assert leakage_reduction_ratio(2.0, 2.0) == 0.0
        assert leakage_reduction_ratio(0.0, 1.0) == 0.0
        assert leakage_reduction_ratio(1.0, 2.0) == pytest.approx(-1.0)

    def test_generate_cognition_produces_labelled_samples(self, polaris_config):
        designs = training_designs(WorkloadConfig(scale=0.25, seed=2,
                                                  designs=("c432",)))
        dataset, report = generate_cognition(designs, polaris_config)
        assert dataset.n_samples > 0
        assert set(np.unique(dataset.labels)) <= {0, 1}
        assert report.designs == ("c432",)
        assert report.tvla_runs >= 2  # baseline + at least one round
        assert report.samples_per_design["c432"] == dataset.n_samples

    def test_requires_designs(self, polaris_config):
        with pytest.raises(ValueError):
            generate_cognition([], polaris_config)

    def test_train_masking_model_requires_data(self, polaris_config):
        empty = Dataset(np.zeros((0, 3)), np.zeros(0, dtype=int), ["a", "b", "c"])
        with pytest.raises(ValueError):
            train_masking_model(empty, polaris_config)

    def test_train_masking_model_all_families(self, trained_polaris,
                                              polaris_config):
        dataset = trained_polaris.dataset
        for family in ("adaboost", "xgboost", "random_forest"):
            config = polaris_config.with_model(family)
            if family != "adaboost":
                # keep the test fast
                config = config.with_model(family, n_estimators=10)
            model = train_masking_model(dataset, config)
            scores = model.positive_score(dataset.features[:5])
            assert scores.shape == (5,)
            assert ((scores >= 0) & (scores <= 1)).all()


class TestPolarisMasking:
    def test_rank_gates_scores_all_maskable(self, trained_polaris, small_benchmark):
        scores = rank_gates(small_benchmark, trained_polaris.model,
                            trained_polaris.config,
                            encoder=trained_polaris.encoder)
        maskable = [g for g in small_benchmark.gates
                    if small_benchmark.library.is_maskable(g.gate_type)]
        assert len(scores) == len(maskable)
        values = [s.combined_score for s in scores]
        assert values == sorted(values, reverse=True)

    def test_polaris_mask_budget_respected(self, trained_polaris, small_benchmark):
        outcome = polaris_mask(small_benchmark, trained_polaris.model,
                               mask_budget=10, config=trained_polaris.config,
                               encoder=trained_polaris.encoder)
        assert outcome.n_masked == 10
        assert outcome.mask_budget == 10
        masked_types = {outcome.masked_netlist.gate(name).gate_type
                        for name in outcome.selected_gates}
        assert all(t.is_masked for t in masked_types)

    def test_polaris_mask_fraction(self, trained_polaris, small_benchmark):
        outcome = polaris_mask(small_benchmark, trained_polaris.model,
                               mask_fraction=0.25, config=trained_polaris.config,
                               encoder=trained_polaris.encoder)
        maskable_count = len(rank_gates(small_benchmark, trained_polaris.model,
                                        trained_polaris.config,
                                        encoder=trained_polaris.encoder))
        assert outcome.n_masked == int(round(0.25 * maskable_count))

    def test_masked_design_remains_functional(self, trained_polaris,
                                              small_benchmark):
        outcome = polaris_mask(small_benchmark, trained_polaris.model,
                               mask_fraction=1.0, config=trained_polaris.config,
                               encoder=trained_polaris.encoder)
        assert validate_netlist(outcome.masked_netlist).is_valid
        assert functional_equivalent(small_benchmark, outcome.masked_netlist,
                                     n_vectors=128)

    def test_invalid_fraction_rejected(self, trained_polaris, small_benchmark):
        with pytest.raises(ValueError):
            polaris_mask(small_benchmark, trained_polaris.model,
                         mask_fraction=1.5, config=trained_polaris.config)


class TestPipeline:
    def test_trained_polaris_contents(self, trained_polaris):
        assert trained_polaris.dataset.n_samples > 0
        assert trained_polaris.training_seconds > 0
        importance = trained_polaris.feature_importance()
        assert importance and importance[0][1] >= importance[-1][1]

    def test_explanations_and_rules(self, trained_polaris):
        explanations = trained_polaris.explain(max_samples=6)
        assert len(explanations) == 6
        assert all(e.additivity_gap < 1e-6 for e in explanations)
        rules = trained_polaris.extract_rules(max_samples=20)
        assert rules is trained_polaris.rules

    def test_protect_design_reports(self, trained_polaris, small_benchmark,
                                    tvla_config):
        before = assess_leakage(small_benchmark, tvla_config)
        report = protect_design(small_benchmark, trained_polaris,
                                mask_fraction=1.0, before=before)
        assert report.design_name == small_benchmark.name
        assert report.after is not None
        assert report.leakage_reduction_pct > 0
        assert report.overheads["area_ratio"] > 1.0
        assert report.polaris_seconds > 0
        assert report.outcome.n_masked <= before.n_leaky

    def test_protect_design_can_skip_evaluation(self, trained_polaris,
                                                small_benchmark, tvla_config):
        before = assess_leakage(small_benchmark, tvla_config)
        report = protect_design(small_benchmark, trained_polaris,
                                mask_fraction=0.5, before=before, evaluate=False)
        assert report.after is None
        assert "before_mean_leakage" in report.leakage


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["des3", 1.234], ["md5", 10.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "des3" in lines[2] and "1.23" in lines[2]

    def test_markdown_table(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        assert text.startswith("| a | b |")
        assert "| 1 | 2 |" in text

    def test_rows_from_dicts_projection(self):
        rows = rows_from_dicts([{"a": 1, "b": 2}, {"a": 3}], ["a", "b"])
        assert rows == [[1, 2], [3, ""]]

    def test_recorder_save_and_load(self, tmp_path):
        recorder = ExperimentRecorder(tmp_path)
        recorder.record(ExperimentRecord("table2", "leakage comparison",
                                         parameters={"scale": 0.3},
                                         rows=[{"design": "des3", "red": 50.0}]))
        path = recorder.save("run.json")
        loaded = ExperimentRecorder.load(path)
        assert len(loaded) == 1
        assert loaded[0].experiment_id == "table2"
        assert loaded[0].rows[0]["design"] == "des3"
