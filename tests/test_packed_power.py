"""The packed end-to-end hot path is bit-identical to its oracles.

Two independent contracts make ``power_backend="packed"`` and the fused
moment update safe defaults:

* **Packed == unpacked traces.**  The packed toggle extraction (XOR over
  packed state bytes + single unpack of the watched rows; masked data
  codes assembled from packed share rows) must produce the same bytes the
  bool-matrix oracle produces — for every netlist, every noise mode and
  every batch size, including batches that do not fill the last packed
  byte.  Identical traces then make t-values *exactly* equal, not merely
  close.
* **Fused == naive moments.**  ``OnePassMoments.update_batch`` (in-place
  Horner power chain over reusable scratch) must match
  ``update_batch_naive`` (the pre-fusion allocation-per-order reference)
  bitwise through order-3 TVLA (central sums to order 6), for the real
  trace layouts (float32 transpose views) as well as plain arrays.

Plus the packed substrate itself: popcount on packed rows with padding
masking, the lazy packed ``SimulationResult``, and the process-wide
masked-toggle-table cache.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.masking import apply_masking, maskable_gates
from repro.netlist import RandomLogicSpec, generate_random_logic, load_benchmark
from repro.power import (
    GatePowerModel,
    PowerModelConfig,
    PowerTraceGenerator,
    popcount_rows,
)
from repro.simulation import (
    LogicSimulator,
    fixed_vs_random_campaigns,
    toggle_counts,
)
from repro.tvla import OnePassMoments, TvlaConfig, assess_leakage, \
    assess_leakage_sharded

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

#: Batch sizes that exercise full bytes, partial last bytes and the
#: degenerate 2-trace case.
ODD_BATCHES = st.sampled_from([2, 7, 8, 9, 64, 73, 100, 129])


def _power_config(noise_mode: str) -> PowerModelConfig:
    if noise_mode == "none":
        return PowerModelConfig(noise_sigma=0.0)
    return PowerModelConfig(noise_mode=noise_mode)


def _generators(netlist, noise_mode: str, mask_refresh: bool = True):
    config = _power_config(noise_mode)
    if not mask_refresh:
        config = PowerModelConfig(noise_mode=config.noise_mode,
                                  noise_sigma=config.noise_sigma,
                                  mask_refresh=False)
    packed = PowerTraceGenerator(netlist, config=config, seed=1,
                                 power_backend="packed")
    unpacked = PowerTraceGenerator(netlist, config=config, seed=1,
                                   power_backend="unpacked")
    return packed, unpacked


class TestPackedTraceEquality:
    @SETTINGS
    @given(
        n_gates=st.integers(min_value=1, max_value=90),
        n_inputs=st.integers(min_value=2, max_value=16),
        profile=st.sampled_from(["crypto", "control", "arithmetic",
                                 "random"]),
        mask=st.booleans(),
        noise_mode=st.sampled_from(["auto", "fast", "gaussian", "none"]),
        n_traces=ODD_BATCHES,
        seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    def test_random_netlists_bit_identical(self, n_gates, n_inputs, profile,
                                           mask, noise_mode, n_traces, seed):
        spec = RandomLogicSpec(n_gates=n_gates, n_inputs=n_inputs,
                               n_outputs=min(4, n_gates), profile=profile,
                               seed=seed)
        netlist = generate_random_logic(spec)
        if mask:
            targets = maskable_gates(netlist)
            if targets:
                netlist = apply_masking(netlist, targets).netlist
        packed, unpacked = _generators(netlist, noise_mode)
        assert packed.resolved_power_backend == "packed"
        assert unpacked.resolved_power_backend == "unpacked"
        campaigns = fixed_vs_random_campaigns(netlist, n_traces, seed=seed)
        for campaign in campaigns:
            fast = packed.generate(campaign, rng=np.random.default_rng(3))
            slow = unpacked.generate(campaign, rng=np.random.default_rng(3))
            assert fast.gate_names == slow.gate_names
            np.testing.assert_array_equal(fast.per_gate, slow.per_gate)
            np.testing.assert_array_equal(fast.total, slow.total)

    def test_faulty_mask_reuse_mode_bit_identical(self):
        """mask_refresh=False (3 mask bits, negative-test mode) too."""
        netlist = load_benchmark("arbiter", scale=0.15, seed=11)
        masked = apply_masking(netlist, maskable_gates(netlist)).netlist
        packed, unpacked = _generators(masked, "fast", mask_refresh=False)
        fixed, rnd = fixed_vs_random_campaigns(masked, 93, seed=2)
        for campaign in (fixed, rnd):
            fast = packed.generate(campaign, rng=np.random.default_rng(5))
            slow = unpacked.generate(campaign, rng=np.random.default_rng(5))
            np.testing.assert_array_equal(fast.per_gate, slow.per_gate)

    @pytest.mark.parametrize("tvla_order", [1, 2, 3])
    def test_t_values_exactly_equal(self, tvla_order):
        """End-to-end assessments: packed and unpacked verdicts match
        bitwise, for odd chunk sizes (partial last bytes per chunk) and
        every evaluated TVLA order."""
        netlist = load_benchmark("voter", scale=0.2, seed=11)
        masked = apply_masking(netlist, maskable_gates(netlist)).netlist
        for design in (netlist, masked):
            results = {}
            for backend in ("packed", "unpacked"):
                config = TvlaConfig(n_traces=165, n_fixed_classes=2, seed=5,
                                    chunk_traces=52, streaming=True,
                                    tvla_order=tvla_order,
                                    power_backend=backend)
                results[backend] = assess_leakage(design, config)
            fast, slow = results["packed"], results["unpacked"]
            assert fast.gate_names == slow.gate_names
            np.testing.assert_array_equal(fast.t_values, slow.t_values)
            for order in fast.order_t_values:
                np.testing.assert_array_equal(fast.order_t_values[order],
                                              slow.order_t_values[order])

    def test_sharded_packed_matches_serial_unpacked(self):
        netlist = load_benchmark("sin", scale=0.2, seed=11)
        packed_config = TvlaConfig(n_traces=192, n_fixed_classes=1, seed=7,
                                   chunk_traces=32, streaming=True,
                                   power_backend="packed")
        unpacked_config = TvlaConfig(n_traces=192, n_fixed_classes=1, seed=7,
                                     chunk_traces=32, streaming=True,
                                     power_backend="unpacked")
        serial = assess_leakage(netlist, unpacked_config)
        sharded = assess_leakage_sharded(netlist, packed_config, n_shards=4,
                                         executor="thread", max_workers=2)
        np.testing.assert_allclose(sharded.t_values, serial.t_values,
                                   rtol=1e-12, atol=1e-12)

    def test_loop_sim_backend_degrades_to_unpacked(self, tiny_netlist):
        generator = PowerTraceGenerator(tiny_netlist, sim_backend="loop",
                                        power_backend="packed")
        assert generator.resolved_power_backend == "unpacked"
        fixed, _ = fixed_vs_random_campaigns(tiny_netlist, 50, seed=1)
        reference = PowerTraceGenerator(tiny_netlist,
                                        power_backend="unpacked")
        np.testing.assert_array_equal(
            generator.generate(fixed, rng=np.random.default_rng(1)).per_gate,
            reference.generate(fixed, rng=np.random.default_rng(1)).per_gate)

    def test_invalid_power_backend_rejected(self, tiny_netlist):
        with pytest.raises(ValueError, match="power_backend"):
            PowerTraceGenerator(tiny_netlist, power_backend="simd")
        with pytest.raises(ValueError, match="power_backend"):
            TvlaConfig(power_backend="simd")


class TestFusedMoments:
    @SETTINGS
    @given(
        n=st.integers(min_value=1, max_value=400),
        width=st.integers(min_value=1, max_value=40),
        max_order=st.sampled_from([2, 3, 4, 6]),
        transposed=st.booleans(),
        float32=st.booleans(),
        n_batches=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    def test_fused_equals_naive_bitwise(self, n, width, max_order,
                                        transposed, float32, n_batches,
                                        seed):
        rng = np.random.default_rng(seed)
        fused = OnePassMoments(max_order=max_order, shape=(width,))
        naive = OnePassMoments(max_order=max_order, shape=(width,))
        for _ in range(n_batches):
            if transposed:
                samples = (rng.random((width, n)) * 12 - 6).T
            else:
                samples = rng.random((n, width)) * 12 - 6
            if float32:
                samples = samples.astype(np.float32)
                if transposed:
                    # Keep the transpose (F-contiguous) layout, like the
                    # real gate-major trace matrix's per_gate view.
                    samples = np.asfortranarray(samples)
            fused.update_batch(samples)
            naive.update_batch_naive(samples)
        assert fused.count == naive.count
        np.testing.assert_array_equal(fused.mean, naive.mean)
        for order in range(2, max_order + 1):
            np.testing.assert_array_equal(fused.central_moment(order),
                                          naive.central_moment(order))

    def test_fused_accumulators_merge_identically(self, rng):
        """Order-3 TVLA (central sums to 6): fused partials merge to the
        exact bytes naive partials merge to."""
        parts_fused, parts_naive = [], []
        for start in range(3):
            fused = OnePassMoments(max_order=6, shape=(9,))
            naive = OnePassMoments(max_order=6, shape=(9,))
            batch = (rng.random((101, 9)) * 4 - 2).astype(np.float32)
            fused.update_batch(batch)
            naive.update_batch_naive(batch)
            parts_fused.append(fused)
            parts_naive.append(naive)
        merged_fused = parts_fused[0].merge(parts_fused[1]).merge(
            parts_fused[2])
        merged_naive = parts_naive[0].merge(parts_naive[1]).merge(
            parts_naive[2])
        np.testing.assert_array_equal(merged_fused.mean, merged_naive.mean)
        for order in range(2, 7):
            np.testing.assert_array_equal(
                merged_fused.central_moment(order),
                merged_naive.central_moment(order))

    def test_scratch_never_aliases_caller_data(self, rng):
        acc = OnePassMoments(max_order=2, shape=(5,))
        samples = rng.random((64, 5))  # float64: must not be mutated
        before = samples.copy()
        acc.update_batch(samples)
        np.testing.assert_array_equal(samples, before)

    def test_update_single_sample_still_matches(self, rng):
        batch_acc = OnePassMoments(max_order=4, shape=(3,))
        single_acc = OnePassMoments(max_order=4, shape=(3,))
        samples = rng.random((40, 3))
        batch_acc.update_batch(samples)
        for row in samples:
            single_acc.update(row)
        np.testing.assert_allclose(single_acc.mean, batch_acc.mean,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(single_acc.central_moment(4),
                                   batch_acc.central_moment(4),
                                   rtol=1e-9, atol=1e-12)


class TestPackedSubstrate:
    @SETTINGS
    @given(
        rows=st.integers(min_value=1, max_value=12),
        n_vectors=st.integers(min_value=1, max_value=130),
        seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    def test_popcount_rows_matches_unpacked_sum(self, rows, n_vectors, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(rows, n_vectors)).astype(bool)
        packed = np.packbits(bits, axis=1)
        # Poison the padding bits: popcount_rows must mask them out.
        remainder = n_vectors % 8
        if remainder:
            poison = packed.copy()
            poison[:, -1] |= np.uint8((1 << (8 - remainder)) - 1)
            packed = poison
        counts = popcount_rows(packed, n_vectors)
        np.testing.assert_array_equal(counts, bits.sum(axis=1))

    def test_popcount_rows_rejects_short_rows(self):
        with pytest.raises(ValueError, match="out of range"):
            popcount_rows(np.zeros((2, 1), dtype=np.uint8), 9)

    def test_toggle_counts_packed_fast_path(self, rng):
        """popcount(prev ^ cur) on packed bytes == the bool-path counts."""
        netlist = load_benchmark("des3", scale=0.2, seed=11)
        compiled = LogicSimulator(netlist, backend="compiled")
        loop = LogicSimulator(netlist, backend="loop")
        stimulus_a = {net: rng.integers(0, 2, 77).astype(bool)
                      for net in netlist.primary_inputs}
        stimulus_b = {net: rng.integers(0, 2, 77).astype(bool)
                      for net in netlist.primary_inputs}
        fast = toggle_counts(netlist, compiled.evaluate(stimulus_a),
                             compiled.evaluate(stimulus_b))
        slow = toggle_counts(netlist, loop.evaluate(stimulus_a),
                             loop.evaluate(stimulus_b))
        assert fast == slow

    def test_simulation_result_is_lazy_and_consistent(self, tiny_netlist):
        simulator = LogicSimulator(tiny_netlist, backend="compiled")
        stimulus = {net: np.array([True, False, True])
                    for net in tiny_netlist.primary_inputs}
        result = simulator.evaluate(stimulus)
        assert result.packed_matrix is not None
        assert result.packed_matrix.shape[1] == 1  # ceil(3 / 8)
        # Unpacked views materialise on demand and agree with the packed
        # bits row for row.
        matrix = result.state_matrix
        assert matrix.shape == (result.packed_matrix.shape[0], 3)
        # Compare the 3 valid bits per row; the padding bits of the last
        # packed byte are unspecified by contract.
        np.testing.assert_array_equal(
            np.unpackbits(result.packed_matrix, axis=1, count=3).view(bool),
            matrix)
        assert not matrix.flags.writeable
        np.testing.assert_array_equal(result.net_values["y"],
                                      matrix[simulator.plan.signal_index["y"]])

    def test_masked_toggle_table_cached_and_read_only(self):
        from repro.netlist import GateType

        model_a = GatePowerModel(seed=1)
        model_b = GatePowerModel(seed=99)
        table_a = model_a.masked_toggle_table(GateType.MASKED_AND)
        table_b = model_b.masked_toggle_table(GateType.MASKED_AND)
        assert table_a is table_b  # rebuilt generators share the table
        assert not table_a.flags.writeable
        with pytest.raises(ValueError):
            table_a[0, 0] = 99
        # reuse_masks is a distinct cache entry with its own shape.
        reuse = model_a.masked_toggle_table(GateType.MASKED_AND,
                                            reuse_masks=True)
        assert reuse.shape == (16, 8)
        assert table_a.shape == (16, 64)

    def test_masked_toggle_table_concurrent_fill_single_instance(self):
        import threading

        from repro.netlist import GateType
        from repro.power import model as model_module

        key = (GatePowerModel, GateType.MASKED_XOR, False)
        model_module._TOGGLE_TABLE_CACHE.pop(key, None)
        barrier = threading.Barrier(8)
        tables = []

        def fill():
            barrier.wait()
            tables.append(
                GatePowerModel(seed=7).masked_toggle_table(GateType.MASKED_XOR))

        threads = [threading.Thread(target=fill) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tables) == 8
        assert all(table is tables[0] for table in tables)
        assert not tables[0].flags.writeable

    def test_masked_toggle_table_detects_corrupted_cache(self):
        from repro.netlist import GateType

        model = GatePowerModel(seed=3)
        table = model.masked_toggle_table(GateType.MASKED_AND)
        table.setflags(write=True)
        try:
            with pytest.raises(RuntimeError, match="became writable"):
                model.masked_toggle_table(GateType.MASKED_AND)
        finally:
            table.setflags(write=False)
