"""Property layer pinning the counter-based stateless sampler (PR 8).

``repro.power.ctrsample`` replaces stateful mask/noise streams with a
Philox counter cipher over ``(seed, class, group, chunk, lane)``
coordinates.  The stateless-sampling contract lives here:

* **Philox oracle** — the native generator's raw words equal the
  pure-numpy reference network bitwise: ``philox_raw`` vs
  ``philox_blocks_reference`` (the ``ctr-philox`` oracle pair).
* **Coordinate determinism** — every draw is a pure function of its
  coordinates: fresh objects, repeated calls and permuted call orders all
  emit identical bits (hypothesis-driven).
* **Stream independence** — distinct coordinates and lanes never share a
  stream.
* **Packed emission** — ``mask_planes`` (bit-sliced ``packbits`` planes)
  round-trips against ``mask_bytes`` on every batch size, including
  non-multiple-of-8 ones.
* **Layout invariance** — ``sampler="counter"`` t-values are **bitwise**
  equal (``np.array_equal``, not ~1e-12) across 1/2/4/8 shards and the
  serial/thread/process executors, and across hypothesis-sampled chunk
  partitions; the ``sampler="sequence"`` oracle keeps its ~1e-12
  contract and its byte-frozen golden draws.
* **Statistical sanity** — chi-square smoke tests of the emitted bytes
  and popcounts (``slow``-marked, excluded from tier-1 CI).
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.masking import apply_masking, maskable_gates
from repro.netlist import load_benchmark
from repro.power import PowerModelConfig, PowerTraceGenerator
from repro.power.bitops import words_for_units
from repro.power.ctrsample import (
    GAUSS_LANE,
    MASK_LANE_BASE,
    NOISE_LANE,
    SAMPLERS,
    CounterDraws,
    CounterStream,
    counter_block,
    counter_key,
    philox_blocks_reference,
    philox_raw,
)
from repro.simulation import fixed_vs_random_campaigns
from repro.tvla import TvlaConfig, assess_leakage, assess_leakage_sharded
from repro.tvla.assessment import (
    accumulate_campaign_chunks,
    accumulate_campaign_slice,
    campaign_schedule,
    resolve_sampler,
)
from repro.tvla.sharding import merge_shard_partials

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

SEEDS = st.integers(min_value=0, max_value=2 ** 64 - 1)
INDEX32 = st.integers(min_value=0, max_value=2 ** 32 - 1)
INDEX64 = st.integers(min_value=0, max_value=2 ** 64 - 1)
#: Batch sizes straddling the packbits word boundary (deliberately odd).
ODD_BATCHES = st.sampled_from([1, 2, 7, 8, 9, 63, 64, 65, 100, 129])


# ----------------------------------------------------------------------
# Philox native vs pure-numpy reference (the ctr-philox oracle pair)
# ----------------------------------------------------------------------
class TestPhiloxOracle:
    @SETTINGS
    @given(seed=SEEDS, class_index=INDEX32, group_index=INDEX32,
           chunk_index=INDEX64, lane=INDEX64,
           n_words=st.integers(min_value=1, max_value=64))
    def test_native_matches_reference(self, seed, class_index, group_index,
                                      chunk_index, lane, n_words):
        native = philox_raw(seed, class_index, group_index, chunk_index,
                            lane, n_words)
        reference = philox_blocks_reference(
            counter_key(seed),
            counter_block(class_index, group_index, chunk_index, lane),
            -(-n_words // 4))[:n_words]
        assert np.array_equal(native, reference)

    @SETTINGS
    @given(seed=SEEDS)
    def test_key_domain_separation_is_injective(self, seed):
        key = counter_key(seed)
        assert key.dtype == np.uint64 and key.shape == (2,)
        # Folding back the domain constants recovers the low 128 seed bits.
        folded = int(seed) & ((1 << 128) - 1)
        assert int(key[0]) ^ 0x3C6EF372FE94F82B == folded & (2 ** 64 - 1)
        assert int(key[1]) ^ 0xA54FF53A5F1D36F1 == folded >> 64

    def test_counter_block_layout(self):
        block = counter_block(3, 1, 70, 5)
        assert block.tolist() == [0, 5, 70, (3 << 32) | 1]

    @pytest.mark.parametrize("kwargs", [
        dict(class_index=-1, group_index=0, chunk_index=0, lane=0),
        dict(class_index=2 ** 32, group_index=0, chunk_index=0, lane=0),
        dict(class_index=0, group_index=2 ** 32, chunk_index=0, lane=0),
        dict(class_index=0, group_index=0, chunk_index=2 ** 64, lane=0),
        dict(class_index=0, group_index=0, chunk_index=0, lane=-2),
    ])
    def test_counter_block_validates_coordinates(self, kwargs):
        with pytest.raises(ValueError):
            counter_block(**kwargs)

    def test_reference_rejects_zero_blocks(self):
        with pytest.raises(ValueError, match="n_blocks"):
            philox_blocks_reference(counter_key(0), counter_block(0, 0, 0, 0),
                                    0)

    def test_reference_carry_chain(self):
        # A counter whose word 0 is near 2**64 must carry into word 1 when
        # the native generator pre-increments.
        counter = np.array([2 ** 64 - 2, 9, 0, 0], dtype=np.uint64)
        key = counter_key(123)
        native = np.random.Philox(counter=counter, key=key).random_raw(16)
        assert np.array_equal(
            philox_blocks_reference(key, counter, 4), native)


# ----------------------------------------------------------------------
# Coordinate determinism and stream independence
# ----------------------------------------------------------------------
class TestCoordinateDeterminism:
    @SETTINGS
    @given(seed=SEEDS, class_index=INDEX32, group_index=INDEX32,
           chunk_index=INDEX64, n_traces=ODD_BATCHES)
    def test_fresh_objects_emit_identical_bits(self, seed, class_index,
                                               group_index, chunk_index,
                                               n_traces):
        first = CounterDraws(seed, class_index, group_index, chunk_index)
        second = CounterStream(seed, class_index, group_index) \
            .draws(chunk_index)
        assert np.array_equal(first.mask_bytes(0, 3, n_traces),
                              second.mask_bytes(0, 3, n_traces))
        assert np.array_equal(first.noise_counts((4, n_traces)),
                              second.noise_counts((4, n_traces)))
        assert np.array_equal(first.gauss((2, n_traces)),
                              second.gauss((2, n_traces)))

    @SETTINGS
    @given(seed=SEEDS, chunk_index=INDEX64)
    def test_call_order_is_irrelevant(self, seed, chunk_index):
        # Statelessness: interleaving draws from other lanes must not
        # advance anything — every call is a pure coordinate lookup.
        draws = CounterDraws(seed, 1, 0, chunk_index)
        mask_first = draws.mask_bytes(0, 2, 40)
        draws.noise_counts((100,))
        draws.gauss((10,))
        draws.mask_bytes(3, 5, 17)
        assert np.array_equal(draws.mask_bytes(0, 2, 40), mask_first)

    @SETTINGS
    @given(seed=SEEDS, n_traces=ODD_BATCHES)
    def test_prefix_stability(self, seed, n_traces):
        # Drawing a longer batch extends — never rewrites — the shorter
        # draw: chunked consumers see the same leading bytes.
        draws = CounterDraws(seed, 0, 1, 2)
        short = draws.mask_bytes(0, 1, n_traces)
        long = draws.mask_bytes(0, 1, n_traces + 64)
        assert np.array_equal(long[:, :n_traces], short)


class TestStreamIndependence:
    @SETTINGS
    @given(seed=SEEDS, class_index=st.integers(0, 2 ** 32 - 2),
           group_index=st.integers(0, 2 ** 32 - 2),
           chunk_index=st.integers(0, 2 ** 64 - 2))
    def test_every_coordinate_axis_separates_streams(self, seed, class_index,
                                                     group_index,
                                                     chunk_index):
        base = philox_raw(seed, class_index, group_index, chunk_index,
                          NOISE_LANE, 8)
        neighbours = [
            philox_raw(seed ^ 1, class_index, group_index, chunk_index,
                       NOISE_LANE, 8),
            philox_raw(seed, class_index + 1, group_index, chunk_index,
                       NOISE_LANE, 8),
            philox_raw(seed, class_index, group_index + 1, chunk_index,
                       NOISE_LANE, 8),
            philox_raw(seed, class_index, group_index, chunk_index + 1,
                       NOISE_LANE, 8),
            philox_raw(seed, class_index, group_index, chunk_index,
                       GAUSS_LANE, 8),
        ]
        for other in neighbours:
            assert not np.array_equal(base, other)

    def test_subgroup_lanes_do_not_collide(self):
        draws = CounterDraws(7, 0, 0, 0)
        lanes = [draws.mask_bytes(k, 2, 64) for k in range(4)]
        for i in range(len(lanes)):
            for j in range(i + 1, len(lanes)):
                assert not np.array_equal(lanes[i], lanes[j])
        # Mask lanes sit above the reserved noise/gauss lanes.
        assert MASK_LANE_BASE > max(NOISE_LANE, GAUSS_LANE)

    def test_class_group_packing_does_not_alias(self):
        # (class=1, group=0) packs to 1<<32; (class=0, group=2**32-1)
        # packs to 2**32-1 — adjacent encodings must stay distinct.
        left = philox_raw(5, 1, 0, 0, NOISE_LANE, 4)
        right = philox_raw(5, 0, 2 ** 32 - 1, 0, NOISE_LANE, 4)
        assert not np.array_equal(left, right)


# ----------------------------------------------------------------------
# Packed bit-sliced emission (mask_planes vs mask_bytes)
# ----------------------------------------------------------------------
class TestPackedEmission:
    @SETTINGS
    @given(seed=SEEDS, n_traces=ODD_BATCHES,
           width=st.integers(min_value=1, max_value=9),
           mask_bits=st.integers(min_value=1, max_value=8))
    def test_planes_equal_packed_byte_bits(self, seed, n_traces, width,
                                           mask_bits):
        draws = CounterDraws(seed, 2, 1, 3)
        planes = draws.mask_planes(0, width, n_traces, mask_bits)
        raw = draws.mask_bytes(0, width, n_traces)
        assert planes.shape == (mask_bits, width, -(-n_traces // 8))
        for bit in range(mask_bits):
            expected = np.packbits((raw >> bit) & np.uint8(1), axis=-1)
            assert np.array_equal(planes[bit], expected)

    @SETTINGS
    @given(seed=SEEDS, n_traces=ODD_BATCHES,
           mask_bits=st.integers(min_value=1, max_value=8))
    def test_unpack_then_repack_round_trip(self, seed, n_traces, mask_bits):
        # The packed emission is the bit-sliced transpose of the byte
        # emission: unpacking every plane and reassembling the integers
        # recovers exactly the masked-down bytes, even when n_traces is
        # not a multiple of 8 (trailing pad bits are zero).
        draws = CounterDraws(seed, 0, 0, 11)
        planes = draws.mask_planes(1, 4, n_traces, mask_bits)
        rebuilt = np.zeros((4, n_traces), dtype=np.uint8)
        for bit in range(mask_bits):
            unpacked = np.unpackbits(planes[bit], axis=-1,
                                     count=n_traces)
            rebuilt |= (unpacked << bit).astype(np.uint8)
        expected = draws.mask_bytes(1, 4, n_traces) \
            & np.uint8((1 << mask_bits) - 1)
        assert np.array_equal(rebuilt, expected)
        # Pad bits beyond n_traces must be zero in every plane.
        full = np.unpackbits(planes, axis=-1)
        assert not full[..., n_traces:].any()

    def test_mask_bits_validated(self):
        draws = CounterDraws(1, 0, 0, 0)
        for bad in (0, 9):
            with pytest.raises(ValueError, match="mask_bits"):
                draws.mask_planes(0, 1, 8, bad)


# ----------------------------------------------------------------------
# Word-draw over-allocation helper (satellite: one definition)
# ----------------------------------------------------------------------
class TestWordsForUnits:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                   31, 32, 33, 100, 129, 2048])
    def test_matches_the_historic_expressions(self, n):
        # The two expressions this helper replaced, verbatim.
        assert words_for_units(n, np.uint8) == (n + 7) // 8
        assert words_for_units(n, np.uint16) == (n + 3) // 4
        assert words_for_units(n, np.uint32) == (n + 1) // 2
        assert words_for_units(n, np.uint64) == n

    @SETTINGS
    @given(n=st.integers(min_value=0, max_value=10 ** 9),
           dtype=st.sampled_from([np.uint8, np.uint16, np.uint32,
                                  np.uint64]))
    def test_exact_covering_word_count(self, n, dtype):
        words = words_for_units(n, dtype)
        need = n * np.dtype(dtype).itemsize
        assert words * 8 >= need          # enough bytes...
        assert (words - 1) * 8 < need or words == 0   # ...but no spare word

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="n_units"):
            words_for_units(-1, np.uint8)
        with pytest.raises(ValueError, match="tile"):
            words_for_units(4, np.complex128)  # itemsize 16 > one word


# ----------------------------------------------------------------------
# Counter sampler through the trace engine (packed == unpacked, bitwise)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def masked_arbiter():
    netlist = load_benchmark("arbiter", scale=0.15, seed=11)
    return apply_masking(netlist, maskable_gates(netlist)).netlist


class TestCounterTraceEngine:
    @pytest.mark.parametrize("noise_mode", ["fast", "gaussian", "none"])
    def test_packed_equals_unpacked_bitwise(self, masked_arbiter, noise_mode):
        config = (PowerModelConfig(noise_sigma=0.0) if noise_mode == "none"
                  else PowerModelConfig(noise_mode=noise_mode))
        campaign = fixed_vs_random_campaigns(masked_arbiter, 93, seed=2)[1]
        draws = CounterDraws(17, 0, 1, 0)
        per_backend = []
        for backend in ("packed", "unpacked"):
            generator = PowerTraceGenerator(masked_arbiter, config=config,
                                            seed=1, power_backend=backend)
            per_backend.append(generator.generate(campaign, draws=draws)
                               .per_gate)
        assert np.array_equal(per_backend[0], per_backend[1])

    def test_draws_and_rng_are_mutually_exclusive(self, masked_arbiter):
        generator = PowerTraceGenerator(masked_arbiter,
                                        config=PowerModelConfig(), seed=1)
        campaign = fixed_vs_random_campaigns(masked_arbiter, 9, seed=2)[0]
        with pytest.raises(ValueError):
            generator.generate(campaign, rng=np.random.default_rng(1),
                               draws=CounterDraws(1, 0, 0, 0))

    def test_loop_engine_rejects_counter_draws(self, masked_arbiter):
        generator = PowerTraceGenerator(masked_arbiter,
                                        config=PowerModelConfig(), seed=1,
                                        vectorised=False)
        campaign = fixed_vs_random_campaigns(masked_arbiter, 9, seed=2)[0]
        with pytest.raises(ValueError):
            generator.generate(campaign, draws=CounterDraws(1, 0, 0, 0))

    def test_resolve_sampler_degrades_for_loop_engine(self, masked_arbiter):
        config = TvlaConfig(n_traces=16, sampler="counter")
        loop = PowerTraceGenerator(masked_arbiter,
                                   config=config.power, seed=config.seed,
                                   vectorised=False)
        fast = PowerTraceGenerator(masked_arbiter,
                                   config=config.power, seed=config.seed)
        assert resolve_sampler(config, loop) == "sequence"
        assert resolve_sampler(config, fast) == "counter"

    def test_sampler_knob_validated(self):
        with pytest.raises(ValueError, match="sampler"):
            TvlaConfig(sampler="bogus")
        assert SAMPLERS == ("counter", "sequence")


# ----------------------------------------------------------------------
# Layout invariance: counter t-values are bitwise layout-independent
# ----------------------------------------------------------------------
#: 600 traces in 128-trace chunks -> 5 chunks (matches the sharding suite).
COUNTER_TVLA = dict(n_traces=600, n_fixed_classes=2, seed=9,
                    chunk_traces=128, streaming=True)


@pytest.fixture(scope="module")
def counter_config() -> TvlaConfig:
    return TvlaConfig(sampler="counter", **COUNTER_TVLA)


@pytest.fixture(scope="module")
def counter_reference(small_benchmark, counter_config):
    return assess_leakage(small_benchmark, counter_config)


class TestLayoutInvariance:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_sharded_is_bitwise_equal(self, small_benchmark, counter_config,
                                      counter_reference, n_shards, executor):
        # The tentpole contract: *exact* equality, not ~1e-12 closeness.
        sharded = assess_leakage_sharded(small_benchmark, counter_config,
                                         n_shards=n_shards,
                                         executor=executor)
        assert np.array_equal(sharded.t_values, counter_reference.t_values)
        assert np.array_equal(sharded.mean_abs_t,
                              counter_reference.mean_abs_t)
        assert np.array_equal(sharded.degrees_of_freedom,
                              counter_reference.degrees_of_freedom)

    def test_process_executor_is_bitwise_equal(self, small_benchmark,
                                               counter_config,
                                               counter_reference):
        sharded = assess_leakage_sharded(small_benchmark, counter_config,
                                         n_shards=4, executor="process")
        assert np.array_equal(sharded.t_values, counter_reference.t_values)

    def test_sequence_oracle_keeps_close_contract(self, small_benchmark):
        # The frozen discipline stays on its historical ~1e-12 contract —
        # close, not bitwise — which is exactly why the counter sampler
        # exists.
        config = TvlaConfig(sampler="sequence", **COUNTER_TVLA)
        reference = assess_leakage(small_benchmark, config)
        sharded = assess_leakage_sharded(small_benchmark, config,
                                         n_shards=4, executor="serial")
        np.testing.assert_allclose(sharded.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)

    def test_samplers_draw_different_universes(self, small_benchmark,
                                               counter_config,
                                               counter_reference):
        sequence = assess_leakage(
            small_benchmark, TvlaConfig(sampler="sequence", **COUNTER_TVLA))
        assert not np.array_equal(sequence.t_values,
                                  counter_reference.t_values)


class TestChunkPartitionProperty:
    """Hypothesis-driven layout invariance at the accumulator level.

    Per-chunk accumulators are computed once; hypothesis then slices them
    into arbitrary contiguous shard partitions and checks the campaign
    merge reproduces the serial chained accumulation **bitwise**
    (``np.array_equal`` on every Welch statistic, not ~1e-12)."""

    @pytest.fixture(scope="class")
    def chunk_partials(self, masked_arbiter):
        config = TvlaConfig(n_traces=384, n_fixed_classes=2, seed=21,
                            chunk_traces=64, streaming=True,
                            sampler="counter")
        generator = PowerTraceGenerator(masked_arbiter, config=config.power,
                                        seed=config.seed)
        schedule = campaign_schedule(masked_arbiter, config)
        per_class = [accumulate_campaign_chunks(generator, pair, config,
                                                class_index)
                     for class_index, pair in enumerate(schedule)]
        serial = [accumulate_campaign_slice(generator, pair, config,
                                            class_index)
                  for class_index, pair in enumerate(schedule)]
        reference = merge_shard_partials(
            [[(acc0, acc1) for acc0, acc1 in serial]], config)
        return config, per_class, reference

    @SETTINGS
    @given(boundaries=st.lists(st.integers(min_value=1, max_value=5),
                               unique=True, max_size=4))
    def test_any_partition_merges_to_the_serial_fold(self, chunk_partials,
                                                     boundaries):
        config, per_class, reference = chunk_partials
        cuts = [0] + sorted(boundaries) + [6]   # 6 chunks
        shard_results = []
        for start, stop in zip(cuts, cuts[1:]):
            shard_results.append([
                (chunks0[start:stop], chunks1[start:stop])
                for chunks0, chunks1 in per_class
            ])
        merged = merge_shard_partials(shard_results, config)
        for class_merged, class_reference in zip(merged, reference):
            assert class_merged.keys() == class_reference.keys()
            for order, result in class_merged.items():
                expected = class_reference[order]
                assert np.array_equal(result.t_statistic,
                                      expected.t_statistic)
                assert np.array_equal(result.degrees_of_freedom,
                                      expected.degrees_of_freedom)


# ----------------------------------------------------------------------
# Frozen sequence oracle (satellite: golden byte-level regression)
# ----------------------------------------------------------------------
class TestSequenceGoldenDraws:
    """The ``sampler="sequence"`` path is a frozen oracle: its traces are
    pinned byte-for-byte to the pre-counter implementation.  These hashes
    were captured from the tree at the commit preceding this change —
    any drift in the SeedSequence draw order, word over-allocation or
    noise synthesis breaks them."""

    GOLDEN = {
        "fast/fixed":
            "16db49e226ea6fcab4175c65b5696a48cf50de94b1f56c8c5de770962804a837",
        "fast/random":
            "33ce16e558043387e58186690bb0b5d8a427a3a76caff495e72c0b6322aeab48",
        "gaussian/fixed":
            "322b1b5035b372bc9088f0d9257df88624741000ace054d74328ade01f5e5b2e",
        "gaussian/random":
            "dd0fecc1fc913fa4b66159d3bd4a26d4711c6160540b7af2792a5ddc87197643",
        "none/fixed":
            "065799b97aff60b60579c6a2fb428c8996835e2d535f2b47c43be191802fa126",
        "none/random":
            "d45ab44748c5778e3eb089f4189aa5a2bbfccfc52175bacddf91a799c2a1f720",
        "loop/fast":
            "28055175a82ce6447664b666eb6f88c3983338ee4d13d96e63c75e918a3a77ba",
    }

    @staticmethod
    def _digest(traces) -> str:
        return hashlib.sha256(
            np.ascontiguousarray(traces.per_gate).tobytes()).hexdigest()

    @pytest.mark.parametrize("noise_mode", ["fast", "gaussian", "none"])
    def test_vectorised_draws_frozen(self, masked_arbiter, noise_mode):
        config = (PowerModelConfig(noise_sigma=0.0) if noise_mode == "none"
                  else PowerModelConfig(noise_mode=noise_mode))
        generator = PowerTraceGenerator(masked_arbiter, config=config,
                                        seed=1, power_backend="packed")
        fixed, random = fixed_vs_random_campaigns(masked_arbiter, 93, seed=2)
        for label, campaign in (("fixed", fixed), ("random", random)):
            traces = generator.generate(campaign,
                                        rng=np.random.default_rng(42))
            assert self._digest(traces) == \
                self.GOLDEN[f"{noise_mode}/{label}"]

    def test_loop_draws_frozen(self, masked_arbiter):
        generator = PowerTraceGenerator(masked_arbiter,
                                        config=PowerModelConfig(
                                            noise_mode="fast"),
                                        seed=1, vectorised=False)
        campaign = fixed_vs_random_campaigns(masked_arbiter, 17, seed=3)[0]
        traces = generator.generate(campaign, rng=np.random.default_rng(9))
        assert self._digest(traces) == self.GOLDEN["loop/fast"]


# ----------------------------------------------------------------------
# Statistical smoke tests (slow: opt in with -m slow)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestStatisticalSmoke:
    def test_mask_byte_uniformity_chi_square(self):
        # 2**18 bytes over 256 bins; chi-square df=255.  The bound sits at
        # ~6 sigma above the mean — deterministic draws, so no flake risk.
        draws = CounterDraws(2024, 0, 0, 0)
        observed = np.bincount(
            draws.mask_bytes(0, 1, 1 << 18).reshape(-1), minlength=256)
        expected = (1 << 18) / 256
        statistic = float(((observed - expected) ** 2 / expected).sum())
        assert statistic < 255 + 6 * np.sqrt(2 * 255)

    def test_noise_popcount_matches_binomial(self):
        # noise_counts draws Binomial(16, 1/2) popcounts; chi-square over
        # the 17 support points, df=16.
        from math import comb
        n = 1 << 17
        observed = np.bincount(
            CounterDraws(7, 1, 0, 3).noise_counts((n,)), minlength=17)
        expected = np.array([comb(16, k) for k in range(17)],
                            dtype=np.float64) / 2 ** 16 * n
        statistic = float(((observed - expected) ** 2 / expected).sum())
        assert statistic < 16 + 6 * np.sqrt(2 * 16)

    def test_bit_balance_per_plane(self):
        # Every mask bit-plane is individually balanced: |p - 0.5| small.
        draws = CounterDraws(99, 2, 1, 5)
        planes = draws.mask_planes(0, 1, 1 << 16, 8)
        ones = np.unpackbits(planes, axis=-1).reshape(8, -1).mean(axis=1)
        assert np.all(np.abs(ones - 0.5) < 0.01)

    def test_gauss_moments(self):
        sample = CounterDraws(5, 0, 0, 0).gauss((1 << 16,),
                                                dtype=np.float64)
        assert abs(float(sample.mean())) < 0.02
        assert abs(float(sample.var()) - 1.0) < 0.02
