"""Tests for the netlist data model."""

import pytest

from repro.netlist import GateType, Netlist, NetlistError


class TestConstruction:
    def test_add_gates_and_query(self, tiny_netlist):
        assert len(tiny_netlist) == 5
        assert "g_and" in tiny_netlist
        assert tiny_netlist.gate("g_and").gate_type is GateType.AND
        assert tiny_netlist.primary_inputs == ("a", "b", "c", "d")
        assert set(tiny_netlist.primary_outputs) == {"y", "n3"}

    def test_duplicate_gate_name_rejected(self, tiny_netlist):
        with pytest.raises(NetlistError, match="duplicate gate"):
            tiny_netlist.add_gate("g_and", GateType.OR, ["a", "b"], "zz")

    def test_duplicate_driver_rejected(self, tiny_netlist):
        with pytest.raises(NetlistError, match="already driven"):
            tiny_netlist.add_gate("g_dup", GateType.OR, ["a", "b"], "n1")

    def test_driving_primary_input_rejected(self, tiny_netlist):
        with pytest.raises(NetlistError, match="primary input"):
            tiny_netlist.add_gate("g_bad", GateType.OR, ["c", "d"], "a")

    def test_fanin_limit_enforced(self):
        netlist = Netlist("limits")
        for i in range(6):
            netlist.add_primary_input(f"i{i}")
        with pytest.raises(NetlistError, match="fan-in"):
            netlist.add_gate("g", GateType.AND,
                             [f"i{i}" for i in range(6)], "out")

    def test_unknown_gate_raises(self, tiny_netlist):
        with pytest.raises(NetlistError, match="unknown gate"):
            tiny_netlist.gate("does_not_exist")

    def test_duplicate_primary_input_rejected(self):
        netlist = Netlist("dups")
        netlist.add_primary_input("a")
        with pytest.raises(NetlistError):
            netlist.add_primary_input("a")


class TestConnectivity:
    def test_driver_and_sinks(self, tiny_netlist):
        assert tiny_netlist.driver_of("n1").name == "g_and"
        assert tiny_netlist.driver_of("a") is None
        sink_names = {g.name for g in tiny_netlist.sinks_of("n1")}
        assert sink_names == {"g_xor", "g_nand"}

    def test_fanin_fanout_gates(self, tiny_netlist):
        fanin = {g.name for g in tiny_netlist.fanin_gates("g_xor")}
        assert fanin == {"g_and", "g_or"}
        fanout = {g.name for g in tiny_netlist.fanout_gates("g_and")}
        assert fanout == {"g_xor", "g_nand"}

    def test_remove_gate_detaches_connectivity(self, tiny_netlist):
        tiny_netlist.remove_gate("g_not")
        assert "g_not" not in tiny_netlist
        assert tiny_netlist.driver_of("y") is None
        assert all(g.name != "g_not" for g in tiny_netlist.sinks_of("n4"))

    def test_replace_gate(self, tiny_netlist):
        gate = tiny_netlist.gate("g_and").copy()
        gate.gate_type = GateType.NAND
        tiny_netlist.replace_gate("g_and", gate)
        assert tiny_netlist.gate("g_and").gate_type is GateType.NAND
        assert tiny_netlist.driver_of("n1").name == "g_and"

    def test_undriven_and_dangling_nets(self):
        netlist = Netlist("broken")
        netlist.add_primary_input("a")
        netlist.add_primary_output("y")
        netlist.add_gate("g", GateType.AND, ["a", "floating"], "n1")
        netlist.add_gate("g2", GateType.NOT, ["a"], "unused")
        assert "floating" in netlist.undriven_nets()
        assert "y" in netlist.undriven_nets()
        assert "unused" in netlist.dangling_nets()


class TestHelpers:
    def test_copy_is_independent(self, tiny_netlist):
        clone = tiny_netlist.copy("clone")
        clone.remove_gate("g_not")
        assert "g_not" in tiny_netlist
        assert clone.name == "clone"
        assert len(clone) == len(tiny_netlist) - 1

    def test_gate_type_counts(self, tiny_netlist):
        counts = tiny_netlist.gate_type_counts()
        assert counts[GateType.AND] == 1
        assert counts[GateType.NOT] == 1
        assert sum(counts.values()) == len(tiny_netlist)

    def test_combinational_and_sequential_views(self, sequential_netlist):
        assert {g.name for g in sequential_netlist.sequential_gates()} == {"ff"}
        comb = {g.name for g in sequential_netlist.combinational_gates()}
        assert comb == {"g_xor", "g_and"}

    def test_fresh_names_are_unique(self, tiny_netlist):
        net = tiny_netlist.fresh_net_name()
        gate = tiny_netlist.fresh_gate_name()
        assert not tiny_netlist.has_net(net)
        assert gate not in tiny_netlist

    def test_stats(self, tiny_netlist):
        stats = tiny_netlist.stats()
        assert stats["gates"] == 5
        assert stats["primary_inputs"] == 4
        assert stats["maskable_gates"] == 4  # AND, OR, XOR, NAND
        assert stats["flip_flops"] == 0
