"""Unit tests of the ``polaris-lint`` static-analysis engine.

Every rule (PL001-PL006) is exercised with a failing fixture **and** a
passing fixture, plus the engine-level contracts: inline suppressions
require a written justification, PL000 meta-findings are not suppressible,
and the JSON document shape is stable for CI consumption.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

from polaris_lint import RULES, Severity, lint_paths  # noqa: E402
from polaris_lint import rules as _rules  # noqa: E402,F401  (registers rules)
from polaris_lint.cli import main as cli_main  # noqa: E402


def run_lint(tmp_path, files, rule_ids=None, paths=None):
    """Write ``files`` (rel path -> source) under ``tmp_path`` and lint."""
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    lint_targets = paths if paths is not None else sorted(files)
    return lint_paths(tmp_path, lint_targets, rule_ids=rule_ids)


def codes(result):
    return [finding.rule for finding in result.findings]


# ----------------------------------------------------------------------
# Engine basics
# ----------------------------------------------------------------------
class TestEngine:
    def test_registry_has_all_seven_rules(self):
        assert set(RULES) == {"PL001", "PL002", "PL003", "PL004",
                              "PL005", "PL006", "PL007"}
        for rule_cls in RULES.values():
            assert rule_cls.title
            assert rule_cls.severity in (Severity.ERROR, Severity.WARNING)

    def test_unparsable_file_is_a_meta_error(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": "def broken(:\n"},
                          rule_ids=["PL001"])
        assert codes(result) == ["PL000"]
        assert "does not parse" in result.findings[0].message
        assert not result.clean

    def test_clean_file_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"ok.py": "x = 1\n"},
                          rule_ids=["PL001", "PL006"])
        assert result.clean
        assert result.files_checked == 1

    def test_json_document_shape(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\nrng = np.random.default_rng()\n"},
            rule_ids=["PL001"])
        doc = result.as_dict()
        assert set(doc) == {"tool", "files_checked", "suppressed",
                            "counts", "clean", "findings"}
        assert doc["tool"] == "polaris-lint"
        assert doc["counts"] == {"error": 1, "warning": 0}
        assert doc["clean"] is False
        (finding,) = doc["findings"]
        assert set(finding) == {"rule", "severity", "path", "line",
                                "col", "message"}
        assert finding["rule"] == "PL001"
        assert finding["path"] == "src/repro/mod.py"
        json.dumps(doc)  # must be serialisable as-is


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_suppression_with_reason_is_honoured(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\n"
             "rng = np.random.default_rng()"
             "  # polaris-lint: disable=PL001 test stub, determinism n/a\n"},
            rule_ids=["PL001"])
        assert result.clean
        assert result.suppressed == 1
        assert result.suppression_reasons == {
            "PL001": ["src/repro/mod.py:2"]}

    def test_comment_only_line_covers_the_next_line(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\n"
             "# polaris-lint: disable=PL001 test stub, determinism n/a\n"
             "rng = np.random.default_rng()\n"},
            rule_ids=["PL001"])
        assert result.clean
        assert result.suppressed == 1

    def test_suppression_without_reason_is_an_error(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\n"
             "rng = np.random.default_rng()  # polaris-lint: disable=PL001\n"},
            rule_ids=["PL001"])
        # The PL001 finding is NOT silenced and the bare suppression is
        # itself a PL000 error.
        assert sorted(codes(result)) == ["PL000", "PL001"]
        meta = next(f for f in result.findings if f.rule == "PL000")
        assert "no written justification" in meta.message

    def test_malformed_suppression_is_an_error(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py": "x = 1  # polaris-lint: plzignore\n"},
            rule_ids=["PL006"])
        assert codes(result) == ["PL000"]
        assert "malformed" in result.findings[0].message

    def test_unknown_rule_in_suppression_is_an_error(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py": "x = 1  # polaris-lint: disable=PL999 because\n"},
            rule_ids=["PL006"])
        assert codes(result) == ["PL000"]
        assert "unknown rule PL999" in result.findings[0].message

    def test_meta_findings_are_not_suppressible(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "# polaris-lint: disable=PL000 nice try\n"
             "x = 1  # polaris-lint: disable=PL006\n"},
            rule_ids=["PL006"])
        # Line 2's bare suppression stays an error even though line 1
        # "covers" it with a PL000 disable.
        assert codes(result) == ["PL000"]

    def test_suppression_only_silences_named_codes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\n"
             "# polaris-lint: disable=PL006 wrong code on purpose\n"
             "rng = np.random.default_rng()\n"},
            rule_ids=["PL001"])
        assert codes(result) == ["PL001"]
        assert result.suppressed == 0

    def test_prose_mentioning_the_tool_is_not_a_suppression(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py": "x = 1  # see polaris-lint docs for the rule table\n"},
            rule_ids=["PL006"])
        assert result.clean


# ----------------------------------------------------------------------
# PL001 — RNG discipline
# ----------------------------------------------------------------------
class TestPL001Rng:
    def test_unseeded_default_rng_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\nrng = np.random.default_rng()\n"},
            rule_ids=["PL001"])
        assert codes(result) == ["PL001"]
        assert "unseeded" in result.findings[0].message

    def test_default_rng_with_literal_none_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\nrng = np.random.default_rng(None)\n"},
            rule_ids=["PL001"])
        assert codes(result) == ["PL001"]

    def test_seeded_default_rng_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\n"
             "rng = np.random.default_rng(1234)\n"
             "seq = np.random.SeedSequence(7)\n"
             "child = np.random.default_rng(seq.spawn(1)[0])\n"},
            rule_ids=["PL001"])
        assert result.clean

    def test_global_state_api_is_flagged_everywhere(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"tools/helper.py":
             "import numpy as np\nnp.random.seed(0)\n"
             "x = np.random.rand(4)\n"},
            rule_ids=["PL001"])
        assert codes(result) == ["PL001", "PL001"]
        assert "global RNG state" in result.findings[0].message

    def test_aliased_global_state_attribute_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\nshuffler = np.random.shuffle\n"},
            rule_ids=["PL001"])
        assert codes(result) == ["PL001"]

    def test_stdlib_random_banned_only_in_src_repro(self, tmp_path):
        banned = run_lint(
            tmp_path,
            {"src/repro/mod.py": "import random\nx = random.random()\n"},
            rule_ids=["PL001"])
        assert "PL001" in codes(banned)
        tolerated = run_lint(
            tmp_path,
            {"tools/helper.py": "import random\nx = random.random()\n"},
            rule_ids=["PL001"])
        assert tolerated.clean

    def test_from_random_import_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py": "from random import choice\n"},
            rule_ids=["PL001"])
        assert codes(result) == ["PL001"]

    def test_bare_philox_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\nbg = np.random.Philox()\n"},
            rule_ids=["PL001"])
        assert codes(result) == ["PL001"]
        assert "without a seed or key" in result.findings[0].message

    def test_philox_with_literal_none_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\nbg = np.random.Philox(None)\n"},
            rule_ids=["PL001"])
        assert codes(result) == ["PL001"]

    def test_coordinate_keyed_philox_passes(self, tmp_path):
        # The ctrsample seam: Philox keyed/countered from campaign
        # coordinates is the sanctioned counter-sampler construction.
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\n"
             "bg = np.random.Philox(key=0x1234, counter=[0, 1, 2, 3])\n"
             "seeded = np.random.Philox(7)\n"
             "from_seq = np.random.Philox(np.random.SeedSequence(9))\n"},
            rule_ids=["PL001"])
        assert result.clean

    def test_philox_counter_alone_is_not_a_seed(self, tmp_path):
        # counter= fixes the block position, not the keystream: without a
        # key the construction still draws OS entropy.
        result = run_lint(
            tmp_path,
            {"src/repro/mod.py":
             "import numpy as np\n"
             "bg = np.random.Philox(counter=[0, 0, 0, 0])\n"},
            rule_ids=["PL001"])
        assert codes(result) == ["PL001"]


# ----------------------------------------------------------------------
# PL002 — oracle pairing (cross-file)
# ----------------------------------------------------------------------
def _oracle_repo_files(tmp_path):
    """A miniature repo satisfying every registered oracle pair."""
    return {
        "src/repro/tvla/moments.py":
            "class OnePassMoments:\n"
            "    def update_batch(self):\n"
            "        pass\n"
            "    def update_batch_naive(self):\n"
            "        pass\n",
        "src/repro/power/traces.py":
            "POWER_BACKENDS = ('packed', 'unpacked')\n"
            "class TraceEngine:\n"
            "    def generate(self):\n"
            "        pass\n"
            "    def generate_loop(self):\n"
            "        pass\n",
        "src/repro/simulation/simulator.py":
            "SIM_BACKENDS = ('compiled', 'loop')\n",
        "src/repro/ml/tree.py":
            "class FittedTree:\n"
            "    def predict_batch(self):\n"
            "        pass\n"
            "    def predict_value(self):\n"
            "        pass\n",
        "src/repro/xai/tree_shap.py":
            "class TreeShapExplainer:\n"
            "    def expectation_batch(self):\n"
            "        pass\n"
            "    def expectation(self):\n"
            "        pass\n"
            "    def explain_matrix(self):\n"
            "        pass\n"
            "    def explain(self):\n"
            "        pass\n",
        "src/repro/power/ctrsample.py":
            "SAMPLERS = ('counter', 'sequence')\n"
            "def philox_raw():\n"
            "    pass\n"
            "def philox_blocks_reference():\n"
            "    pass\n",
        "tests/test_oracles.py":
            "# references: update_batch update_batch_naive packed unpacked\n"
            "# compiled loop generate generate_loop\n"
            "# predict_batch predict_value expectation_batch expectation\n"
            "# explain_matrix explain\n"
            "# philox_raw philox_blocks_reference counter sequence\n",
    }


class TestPL002Oracle:
    def test_complete_pairs_pass(self, tmp_path):
        result = run_lint(tmp_path, _oracle_repo_files(tmp_path),
                          rule_ids=["PL002"], paths=["src"])
        assert result.clean

    def test_missing_module_is_flagged(self, tmp_path):
        files = _oracle_repo_files(tmp_path)
        del files["src/repro/simulation/simulator.py"]
        result = run_lint(tmp_path, files, rule_ids=["PL002"], paths=["src"])
        assert codes(result) == ["PL002"]
        assert "missing or unparsable" in result.findings[0].message

    def test_dropped_oracle_symbol_is_flagged(self, tmp_path):
        files = _oracle_repo_files(tmp_path)
        files["src/repro/tvla/moments.py"] = (
            "class OnePassMoments:\n"
            "    def update_batch(self):\n"
            "        pass\n")
        result = run_lint(tmp_path, files, rule_ids=["PL002"], paths=["src"])
        assert codes(result) == ["PL002"]
        assert "'update_batch_naive' no longer exists" \
            in result.findings[0].message

    def test_dropped_selector_string_is_flagged(self, tmp_path):
        files = _oracle_repo_files(tmp_path)
        files["src/repro/simulation/simulator.py"] = (
            "SIM_BACKENDS = ('compiled',)\n")
        result = run_lint(tmp_path, files, rule_ids=["PL002"], paths=["src"])
        assert codes(result) == ["PL002"]
        assert "selector string 'loop'" in result.findings[0].message

    def test_untested_pair_is_flagged(self, tmp_path):
        files = _oracle_repo_files(tmp_path)
        files["tests/test_oracles.py"] = (
            "# references: update_batch update_batch_naive packed unpacked\n"
            "# compiled loop generate\n"  # generate_loop dropped
            "# predict_batch predict_value expectation_batch expectation\n"
            "# explain_matrix explain\n"
            "# philox_raw philox_blocks_reference counter sequence\n")
        result = run_lint(tmp_path, files, rule_ids=["PL002"], paths=["src"])
        assert codes(result) == ["PL002"]
        assert "untested" in result.findings[0].message

    def test_word_boundary_no_substring_credit(self, tmp_path):
        # 'generate_loop' alone must not satisfy the 'generate' side.
        files = _oracle_repo_files(tmp_path)
        files["tests/test_oracles.py"] = (
            "# references: update_batch update_batch_naive packed unpacked\n"
            "# compiled loop generate_loop\n"
            "# predict_batch predict_value expectation_batch expectation\n"
            "# explain_matrix explain\n"
            "# philox_raw philox_blocks_reference counter sequence\n")
        result = run_lint(tmp_path, files, rule_ids=["PL002"], paths=["src"])
        assert codes(result) == ["PL002"]

    def test_real_repo_satisfies_every_pair(self):
        result = lint_paths(REPO_ROOT, ["src"], rule_ids=["PL002"])
        assert result.clean, [f.render() for f in result.findings]


# ----------------------------------------------------------------------
# PL003 — buffer safety
# ----------------------------------------------------------------------
class TestPL003Buffers:
    def test_unfrozen_cache_store_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import numpy as np\n"
             "_TABLE_CACHE = {}\n"
             "def build(key):\n"
             "    table = np.zeros(4)\n"
             "    _TABLE_CACHE[key] = table\n"
             "    return table\n"},
            rule_ids=["PL003"])
        assert codes(result) == ["PL003"]
        assert "without setflags(write=False)" in result.findings[0].message

    def test_frozen_cache_store_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import numpy as np\n"
             "_TABLE_CACHE = {}\n"
             "def build(key):\n"
             "    table = np.zeros(4)\n"
             "    table.setflags(write=False)\n"
             "    _TABLE_CACHE[key] = table\n"
             "    return table\n"},
            rule_ids=["PL003"])
        assert result.clean

    def test_anonymous_cache_store_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import numpy as np\n"
             "_TABLE_CACHE = {}\n"
             "def build(key):\n"
             "    _TABLE_CACHE[key] = np.zeros(4)\n"},
            rule_ids=["PL003"])
        assert codes(result) == ["PL003"]

    def test_module_level_table_must_be_frozen(self, tmp_path):
        flagged = run_lint(
            tmp_path,
            {"mod.py": "import numpy as np\nTABLE = np.arange(16)\n"},
            rule_ids=["PL003"])
        assert codes(flagged) == ["PL003"]
        frozen = run_lint(
            tmp_path,
            {"ok.py":
             "import numpy as np\n"
             "TABLE = np.arange(16)\n"
             "TABLE.setflags(write=False)\n"},
            rule_ids=["PL003"], paths=["ok.py"])
        assert frozen.clean

    def test_parameter_mutation_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "def scale(values, factor):\n"
             "    values *= factor\n"
             "    return values\n"},
            rule_ids=["PL003"])
        assert codes(result) == ["PL003"]
        assert "caller-owned parameter" in result.findings[0].message

    def test_mutation_after_copy_rebind_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "def scale(values, factor):\n"
             "    values = values.copy()\n"
             "    values *= factor\n"
             "    return values\n"},
            rule_ids=["PL003"])
        assert result.clean

    def test_documented_or_named_mutation_contracts_pass(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "def scale_inplace(values, factor):\n"
             "    values *= factor\n"
             "\n"
             "def accumulate(total, out):\n"
             "    out[0] = total\n"
             "\n"
             "def normalise(values):\n"
             "    \"\"\"Normalise ``values`` in place.\"\"\"\n"
             "    values /= 2\n"},
            rule_ids=["PL003"])
        assert result.clean

    def test_out_kwarg_on_parameter_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import numpy as np\n"
             "def accumulate(values, extra):\n"
             "    np.add(values, extra, out=values)\n"},
            rule_ids=["PL003"])
        assert codes(result) == ["PL003"]


# ----------------------------------------------------------------------
# PL004 — pickle hygiene
# ----------------------------------------------------------------------
class TestPL004Pickle:
    def test_scratch_attr_without_getstate_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "class Worker:\n"
             "    def __init__(self):\n"
             "        self._scratch_buffers = []\n"},
            rule_ids=["PL004"])
        assert codes(result) == ["PL004"]
        assert "no __getstate__" in result.findings[0].message

    def test_getstate_not_mentioning_scratch_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "class Worker:\n"
             "    def __init__(self):\n"
             "        self._scratch_buffers = []\n"
             "    def __getstate__(self):\n"
             "        return dict(self.__dict__)\n"},
            rule_ids=["PL004"])
        assert codes(result) == ["PL004"]
        assert "_scratch_buffers" in result.findings[0].message

    def test_getstate_excluding_scratch_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "class Worker:\n"
             "    def __init__(self):\n"
             "        self._scratch_buffers = []\n"
             "    def __getstate__(self):\n"
             "        state = dict(self.__dict__)\n"
             "        state['_scratch_buffers'] = []\n"
             "        return state\n"},
            rule_ids=["PL004"])
        assert result.clean

    def test_registry_class_is_checked_by_name(self, tmp_path):
        # OnePassMoments is in PICKLE_SEAM_CLASSES: its registered
        # attribute is enforced even without 'scratch' fuzzy-matching.
        result = run_lint(
            tmp_path,
            {"mod.py":
             "class OnePassMoments:\n"
             "    def __init__(self):\n"
             "        self._batch_scratch = [None, None]\n"},
            rule_ids=["PL004"])
        assert codes(result) == ["PL004"]

    def test_class_without_scratch_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "class Plain:\n"
             "    def __init__(self):\n"
             "        self.value = 1\n"},
            rule_ids=["PL004"])
        assert result.clean


# ----------------------------------------------------------------------
# PL005 — resource lifecycle
# ----------------------------------------------------------------------
class TestPL005Resources:
    def test_leaked_executor_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "from concurrent.futures import ThreadPoolExecutor\n"
             "def run():\n"
             "    pool = ThreadPoolExecutor(max_workers=2)\n"
             "    return pool.submit(print)\n"},
            rule_ids=["PL005"])
        assert codes(result) == ["PL005"]
        assert "without a guaranteed release" in result.findings[0].message

    def test_with_block_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "from concurrent.futures import ThreadPoolExecutor\n"
             "def run():\n"
             "    with ThreadPoolExecutor(max_workers=2) as pool:\n"
             "        return pool.submit(print).result()\n"},
            rule_ids=["PL005"])
        assert result.clean

    def test_closing_wrapper_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import sqlite3\n"
             "from contextlib import closing\n"
             "def query(path):\n"
             "    with closing(sqlite3.connect(path)) as conn:\n"
             "        return conn.execute('select 1').fetchone()\n"},
            rule_ids=["PL005"])
        assert result.clean

    def test_try_finally_close_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import sqlite3\n"
             "def query(path):\n"
             "    conn = sqlite3.connect(path)\n"
             "    try:\n"
             "        return conn.execute('select 1').fetchone()\n"
             "    finally:\n"
             "        conn.close()\n"},
            rule_ids=["PL005"])
        assert result.clean

    def test_ownership_transfer_by_return_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "from concurrent.futures import ProcessPoolExecutor\n"
             "def make_pool(n):\n"
             "    return ProcessPoolExecutor(max_workers=n)\n"
             "def make_pool_tuple(n):\n"
             "    return ProcessPoolExecutor(max_workers=n), True\n"},
            rule_ids=["PL005"])
        assert result.clean

    def test_self_attribute_ownership_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import sqlite3\n"
             "class Store:\n"
             "    def __init__(self, path):\n"
             "        self._conn = sqlite3.connect(path)\n"
             "    def close(self):\n"
             "        self._conn.close()\n"},
            rule_ids=["PL005"])
        assert result.clean

    def test_unreleased_sqlite_connection_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import sqlite3\n"
             "def query(path):\n"
             "    conn = sqlite3.connect(path)\n"
             "    return conn.execute('select 1').fetchone()\n"},
            rule_ids=["PL005"])
        assert codes(result) == ["PL005"]

    # -- asyncio resources (service layer) -----------------------------
    def test_leaked_asyncio_server_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import asyncio\n"
             "async def serve(handler):\n"
             "    server = await asyncio.start_server(handler, 'x', 0)\n"
             "    await asyncio.sleep(60)\n"},
            rule_ids=["PL005"])
        assert codes(result) == ["PL005"]
        assert "start_server" in result.findings[0].message

    def test_finally_closed_asyncio_server_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import asyncio\n"
             "async def serve(handler):\n"
             "    server = await asyncio.start_server(handler, 'x', 0)\n"
             "    try:\n"
             "        await server.serve_forever()\n"
             "    finally:\n"
             "        server.close()\n"
             "        await server.wait_closed()\n"},
            rule_ids=["PL005"])
        assert result.clean

    def test_async_with_server_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import asyncio\n"
             "async def serve(handler):\n"
             "    async with await asyncio.start_server(handler, 'x', 0) "
             "as server:\n"
             "        await server.serve_forever()\n"},
            rule_ids=["PL005"])
        assert result.clean

    def test_leaked_background_task_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import asyncio\n"
             "async def main(work):\n"
             "    task = asyncio.create_task(work())\n"
             "    await asyncio.sleep(1)\n"},
            rule_ids=["PL005"])
        assert codes(result) == ["PL005"]

    def test_cancelled_background_task_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import asyncio\n"
             "async def main(work):\n"
             "    task = asyncio.create_task(work())\n"
             "    try:\n"
             "        await asyncio.sleep(1)\n"
             "    finally:\n"
             "        task.cancel()\n"},
            rule_ids=["PL005"])
        assert result.clean

    def test_attribute_ownership_transfer_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import asyncio\n"
             "class Service:\n"
             "    async def start(self, handler):\n"
             "        self._server = await asyncio.start_server(\n"
             "            handler, 'x', 0)\n"
             "def attach(connection, work):\n"
             "    connection.sender = asyncio.create_task(work())\n"},
            rule_ids=["PL005"])
        assert result.clean

    def test_stream_pair_writer_close_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import asyncio\n"
             "async def ping(host, port):\n"
             "    reader, writer = await asyncio.open_connection(host, "
             "port)\n"
             "    try:\n"
             "        return await reader.readline()\n"
             "    finally:\n"
             "        writer.close()\n"
             "        await writer.wait_closed()\n"},
            rule_ids=["PL005"])
        assert result.clean

    def test_stream_pair_unreleased_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "import asyncio\n"
             "async def ping(host, port):\n"
             "    reader, writer = await asyncio.open_connection(host, "
             "port)\n"
             "    return await reader.readline()\n"},
            rule_ids=["PL005"])
        assert codes(result) == ["PL005"]


# ----------------------------------------------------------------------
# PL006 — float equality
# ----------------------------------------------------------------------
class TestPL006FloatEquality:
    def test_float_literal_equality_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "def check(x):\n"
             "    return x == 1.5 or x != -2.5\n"},
            rule_ids=["PL006"])
        assert codes(result) == ["PL006", "PL006"]

    def test_float_reduction_equality_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "def check(a, b):\n"
             "    return a.mean() == b.mean()\n"},
            rule_ids=["PL006"])
        assert codes(result) == ["PL006"]

    def test_integer_and_ordering_comparisons_pass(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "def check(x, a):\n"
             "    return x == 1 and x >= 1.5 and a.mean() > 0.0\n"},
            rule_ids=["PL006"])
        assert result.clean

    def test_justified_suppression_silences_sentinel(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"mod.py":
             "def record(scale):\n"
             "    # polaris-lint: disable=PL006 exact default sentinel\n"
             "    if scale != 1.0:\n"
             "        return scale\n"},
            rule_ids=["PL006"])
        assert result.clean
        assert result.suppressed == 1


# ----------------------------------------------------------------------
# PL007 — durable writes
# ----------------------------------------------------------------------
class TestPL007DurableWrites:
    def test_bare_write_open_in_campaign_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/campaign/mod.py":
             "def save(path, data):\n"
             "    with open(path, 'wb') as handle:\n"
             "        handle.write(data)\n"},
            rule_ids=["PL007"])
        assert codes(result) == ["PL007"]
        assert "atomic_write_bytes" in result.findings[0].message

    def test_write_text_in_service_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/service/mod.py":
             "def save(path, text):\n"
             "    path.write_text(text)\n"},
            rule_ids=["PL007"])
        assert codes(result) == ["PL007"]

    def test_hand_rolled_atomic_publish_is_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/campaign/mod.py":
             "import os\n"
             "import tempfile\n"
             "def publish(path, data):\n"
             "    fd, temp = tempfile.mkstemp(dir='.')\n"
             "    os.write(fd, data)\n"
             "    os.close(fd)\n"
             "    os.replace(temp, path)\n"},
            rule_ids=["PL007"])
        assert codes(result) == ["PL007", "PL007"]  # mkstemp + replace
        assert "hand-rolled" in result.findings[0].message

    def test_dynamic_mode_is_flagged(self, tmp_path):
        # The rule cannot prove a computed mode read-only.
        result = run_lint(
            tmp_path,
            {"src/repro/campaign/mod.py":
             "def touch(path, mode):\n"
             "    return open(path, mode)\n"},
            rule_ids=["PL007"])
        assert codes(result) == ["PL007"]

    def test_read_mode_open_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/campaign/mod.py":
             "def load(path):\n"
             "    with open(path) as handle:\n"
             "        first = handle.read()\n"
             "    with open(path, 'rb') as handle:\n"
             "        return first, handle.read()\n"},
            rule_ids=["PL007"])
        assert result.clean

    def test_helper_calls_pass(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/campaign/mod.py":
             "from repro.reliability.atomic import atomic_write_bytes\n"
             "from repro.reliability.atomic import publish_exclusive\n"
             "def save(path, data):\n"
             "    atomic_write_bytes(path, data)\n"
             "    return publish_exclusive(path, data)\n"},
            rule_ids=["PL007"])
        assert result.clean

    def test_outside_guarded_prefixes_is_untouched(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"tools/helper.py":
             "def save(path, data):\n"
             "    with open(path, 'wb') as handle:\n"
             "        handle.write(data)\n",
             "src/repro/reliability/atomic.py":
             "import os\n"
             "def atomic_write_bytes(path, data):\n"
             "    os.replace('tmp', path)\n"},
            rule_ids=["PL007"])
        assert result.clean

    def test_justified_suppression_is_honoured(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"src/repro/campaign/mod.py":
             "def trace(path, line):\n"
             "    # polaris-lint: disable=PL007 append-only debug log\n"
             "    with open(path, 'a') as handle:\n"
             "        handle.write(line)\n"},
            rule_ids=["PL007"])
        assert result.clean
        assert result.suppressed == 1

    def test_real_repo_campaign_and_service_are_clean(self):
        result = lint_paths(REPO_ROOT, ["src/repro/campaign",
                                        "src/repro/service"],
                            rule_ids=["PL007"])
        assert result.clean, [f.render() for f in result.findings]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("PL001", "PL002", "PL003", "PL004", "PL005",
                        "PL006", "PL007"):
            assert rule_id in out

    def test_unknown_rule_id_exits_2(self, capsys):
        assert cli_main(["--rules", "PL042", "--root",
                         str(REPO_ROOT)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_failing_path_exits_1_with_findings(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\n"
                       "rng = np.random.default_rng()\n", encoding="utf-8")
        code = cli_main([str(bad), "--root", str(tmp_path),
                         "--rules", "PL001"])
        out = capsys.readouterr().out
        assert code == 1
        assert "PL001" in out and "FAILED" in out

    def test_json_format_round_trips(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n", encoding="utf-8")
        code = cli_main([str(good), "--root", str(tmp_path),
                         "--format", "json", "--rules", "PL006"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["clean"] is True
        assert doc["tool"] == "polaris-lint"
