"""Tests for the ensemble models: Random Forest, AdaBoost, gradient boosting."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    GradientBoostingClassifier,
    NotFittedError,
    RandomForestClassifier,
    accuracy_score,
    roc_auc_score,
)


@pytest.fixture
def nonlinear_data(rng):
    features = rng.normal(size=(600, 6))
    labels = (((features[:, 0] > 0) & (features[:, 1] < 0.5))
              | (features[:, 2] * features[:, 3] > 0.4)).astype(int)
    split = 450
    return (features[:split], labels[:split], features[split:], labels[split:])


class TestRandomForest:
    def test_beats_chance_on_nonlinear_data(self, nonlinear_data):
        Xtr, ytr, Xte, yte = nonlinear_data
        model = RandomForestClassifier(n_estimators=25, max_depth=7,
                                       random_state=1).fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.8

    def test_probabilities_valid(self, nonlinear_data):
        Xtr, ytr, Xte, _ = nonlinear_data
        model = RandomForestClassifier(n_estimators=10, max_depth=5).fit(Xtr, ytr)
        proba = model.predict_proba(Xte)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_deterministic_given_seed(self, nonlinear_data):
        Xtr, ytr, Xte, _ = nonlinear_data
        a = RandomForestClassifier(n_estimators=8, random_state=3).fit(Xtr, ytr)
        b = RandomForestClassifier(n_estimators=8, random_state=3).fit(Xtr, ytr)
        np.testing.assert_allclose(a.predict_proba(Xte), b.predict_proba(Xte))

    def test_feature_importances_shape(self, nonlinear_data):
        Xtr, ytr, _, _ = nonlinear_data
        model = RandomForestClassifier(n_estimators=5, max_depth=4).fit(Xtr, ytr)
        assert model.feature_importances_.shape == (Xtr.shape[1],)

    def test_invalid_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.zeros((1, 3)))

    def test_zero_sum_sample_weight_rejected(self, nonlinear_data):
        # Regression: all-zero weights used to propagate NaN bootstrap
        # probabilities into rng.choice instead of failing loudly.
        Xtr, ytr, _, _ = nonlinear_data
        with pytest.raises(ValueError, match="sample_weight"):
            RandomForestClassifier(n_estimators=3).fit(
                Xtr, ytr, sample_weight=np.zeros(len(ytr)))

    def test_negative_sample_weight_rejected(self, nonlinear_data):
        Xtr, ytr, _, _ = nonlinear_data
        weights = np.ones(len(ytr))
        weights[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            RandomForestClassifier(n_estimators=3).fit(
                Xtr, ytr, sample_weight=weights)


class TestAdaBoost:
    def test_boosting_improves_over_single_stump(self, nonlinear_data):
        Xtr, ytr, Xte, yte = nonlinear_data
        stump = AdaBoostClassifier(n_estimators=1, learning_rate=1.0,
                                   max_depth=1).fit(Xtr, ytr)
        boosted = AdaBoostClassifier(n_estimators=80, learning_rate=0.5,
                                     max_depth=1).fit(Xtr, ytr)
        assert (accuracy_score(yte, boosted.predict(Xte))
                > accuracy_score(yte, stump.predict(Xte)))

    def test_auc_reasonable(self, nonlinear_data):
        Xtr, ytr, Xte, yte = nonlinear_data
        model = AdaBoostClassifier(n_estimators=60, learning_rate=0.5,
                                   max_depth=2).fit(Xtr, ytr)
        assert roc_auc_score(yte, model.positive_score(Xte)) > 0.85

    def test_small_learning_rate_matches_paper_configuration(self, nonlinear_data):
        Xtr, ytr, Xte, yte = nonlinear_data
        model = AdaBoostClassifier(n_estimators=100, learning_rate=0.01,
                                   max_depth=2).fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.6

    def test_single_class_training_degenerates_gracefully(self):
        features = np.random.default_rng(0).normal(size=(20, 3))
        model = AdaBoostClassifier(n_estimators=5).fit(features, np.ones(20, dtype=int))
        assert (model.predict(features) == 1).all()

    def test_sample_weight_influences_model(self, rng):
        features = rng.normal(size=(200, 3))
        labels = (features[:, 0] > 0).astype(int)
        weights = np.where(labels == 1, 10.0, 0.1)
        model = AdaBoostClassifier(n_estimators=20, learning_rate=0.5).fit(
            features, labels, sample_weight=weights)
        predictions = model.predict(features)
        # Recall on the heavily weighted class should be near perfect.
        assert (predictions[labels == 1] == 1).mean() > 0.95

    def test_estimator_weights_positive(self, nonlinear_data):
        Xtr, ytr, _, _ = nonlinear_data
        model = AdaBoostClassifier(n_estimators=20, learning_rate=0.3).fit(Xtr, ytr)
        assert all(w > 0 for w in model.estimator_weights_)
        assert len(model.estimators_) == len(model.estimator_weights_)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            AdaBoostClassifier(learning_rate=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            AdaBoostClassifier().predict_proba(np.zeros((1, 2)))


class TestGradientBoosting:
    def test_learns_nonlinear_boundary(self, nonlinear_data):
        Xtr, ytr, Xte, yte = nonlinear_data
        model = GradientBoostingClassifier(n_estimators=60, learning_rate=0.2,
                                           max_depth=3).fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.85

    def test_probabilities_valid_and_monotone_in_score(self, nonlinear_data):
        Xtr, ytr, Xte, _ = nonlinear_data
        model = GradientBoostingClassifier(n_estimators=30, learning_rate=0.2).fit(
            Xtr, ytr)
        proba = model.predict_proba(Xte)
        scores = model.decision_function(Xte)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        order = np.argsort(scores)
        assert (np.diff(proba[order, 1]) >= -1e-12).all()

    def test_more_rounds_reduce_training_error(self, nonlinear_data):
        Xtr, ytr, _, _ = nonlinear_data
        few = GradientBoostingClassifier(n_estimators=5, learning_rate=0.2).fit(Xtr, ytr)
        many = GradientBoostingClassifier(n_estimators=80, learning_rate=0.2).fit(Xtr, ytr)
        assert many.score(Xtr, ytr) >= few.score(Xtr, ytr)

    def test_subsampling_still_learns(self, nonlinear_data):
        Xtr, ytr, Xte, yte = nonlinear_data
        model = GradientBoostingClassifier(n_estimators=60, learning_rate=0.2,
                                           subsample=0.7, random_state=2).fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.8

    def test_multiclass_rejected(self, rng):
        features = rng.normal(size=(30, 2))
        labels = rng.integers(0, 3, 30)
        with pytest.raises(ValueError, match="binary"):
            GradientBoostingClassifier().fit(features, labels)

    def test_single_class_training(self, rng):
        features = rng.normal(size=(20, 2))
        model = GradientBoostingClassifier(n_estimators=5).fit(
            features, np.zeros(20, dtype=int))
        assert (model.predict(features) == 0).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0)

    def test_unfitted_decision_function_raises(self):
        with pytest.raises(NotFittedError):
            GradientBoostingClassifier().decision_function(np.zeros((1, 2)))

    def test_balanced_fit_is_recognised_as_fitted(self):
        # Regression: the not-fitted sentinel used to be
        # ``initial_score_ == 0.0``, which a perfectly balanced fit
        # legitimately produces (log-odds of base rate 0.5).
        features = np.array([[0.0], [1.0], [2.0], [3.0]])
        labels = np.array([0, 0, 1, 1])
        model = GradientBoostingClassifier(
            n_estimators=3, learning_rate=0.1).fit(features, labels)
        assert model.initial_score_ == 0.0
        assert model.fitted_
        assert model.decision_function(features).shape == (4,)
