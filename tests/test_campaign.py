"""Tests for the distributed campaign subsystem (`repro.campaign`).

The contracts pinned here are what make campaigns trustworthy:

* accumulator and assessment serialisation round-trips are **bit-identical**
  (not merely close) — the foundation of the content-addressed store;
* the queue's lease/ack/retry semantics survive dead workers, duplicate
  deliveries and poisoned tasks;
* `QueueExecutor` satisfies the existing `ExecutorLike` seam, so the
  sharded drivers gain cross-process workers with zero API change;
* a resumed / fault-injected campaign converges to the serial t-values
  (~1e-12), and cache hits are served bit-identically without simulating;
* the order-2 `OnePassMoments` fast path equals the general Pébay path
  bit for bit (ROADMAP follow-up).
"""

from __future__ import annotations

import contextlib
import json
import pickle
import time

import numpy as np
import pytest

from repro.campaign import (
    CampaignError,
    CampaignPaths,
    CampaignSpec,
    QueueExecutor,
    ResultStore,
    TaskFailedError,
    TaskQueue,
    assessment_from_dict,
    assessment_to_dict,
    campaign_queue,
    campaign_status,
    collect_result,
    list_campaigns,
    pack_shard_moments,
    run_campaign,
    run_worker,
    submit_campaign,
    unpack_shard_moments,
)
from repro.campaign.cli import main as cli_main
from repro.campaign.store import as_result_store
from repro.tvla import (
    OnePassMoments,
    TvlaConfig,
    assess_leakage,
    assess_leakage_sharded,
    assess_many,
)

#: Campaign settings shared by the runner tests: 240 traces in 48-trace
#: chunks -> 5 chunks, so 3 shards give a 2/2/1 split.
CAMPAIGN_TVLA = dict(n_traces=240, n_fixed_classes=2, seed=7,
                     chunk_traces=48, streaming=True)


@pytest.fixture
def campaign_config() -> TvlaConfig:
    return TvlaConfig(**CAMPAIGN_TVLA)


@pytest.fixture
def campaign_root(tmp_path):
    return tmp_path / "runs"


def _assert_assessments_equal(left, right):
    """Bitwise equality of every array/field that defines a verdict."""
    assert left.design_name == right.design_name
    assert left.gate_names == right.gate_names
    assert np.array_equal(left.t_values, right.t_values)
    assert np.array_equal(left.degrees_of_freedom, right.degrees_of_freedom)
    assert np.array_equal(left.mean_abs_t, right.mean_abs_t)
    assert left.n_traces == right.n_traces
    assert left.n_shards == right.n_shards
    assert sorted(left.order_t_values) == sorted(right.order_t_values)
    for order, values in left.order_t_values.items():
        assert np.array_equal(values, right.order_t_values[order])


# ----------------------------------------------------------------------
# OnePassMoments wire format + order-2 specialisation
# ----------------------------------------------------------------------
class TestMomentsSerialisation:
    @pytest.mark.parametrize("max_order", [2, 4, 6])
    def test_round_trip_bit_identical(self, rng, max_order):
        acc = OnePassMoments(max_order=max_order, shape=(9,))
        for _ in range(4):
            acc.update_batch(rng.normal(size=(33, 9)))
        clone = OnePassMoments.from_bytes(acc.to_bytes())
        assert clone.count == acc.count
        assert clone.max_order == acc.max_order
        assert clone.shape == acc.shape
        assert np.array_equal(clone.mean, acc.mean)
        for order in range(2, max_order + 1):
            assert np.array_equal(clone.central_moment(order),
                                  acc.central_moment(order))

    def test_round_tripped_accumulator_merges_identically(self, rng):
        left = OnePassMoments(max_order=4, shape=(5,))
        right = OnePassMoments(max_order=4, shape=(5,))
        left.update_batch(rng.normal(size=(40, 5)))
        right.update_batch(rng.normal(size=(25, 5)))
        direct = left.merge(right)
        revived = (OnePassMoments.from_bytes(left.to_bytes())
                   .merge(OnePassMoments.from_bytes(right.to_bytes())))
        assert np.array_equal(direct.mean, revived.mean)
        for order in (2, 3, 4):
            assert np.array_equal(direct.central_moment(order),
                                  revived.central_moment(order))

    def test_empty_accumulator_round_trips(self):
        acc = OnePassMoments(max_order=2, shape=(3,))
        clone = OnePassMoments.from_bytes(acc.to_bytes())
        assert clone.count == 0
        assert np.array_equal(clone.mean, np.zeros(3))

    def test_scalar_shape_round_trips(self, rng):
        acc = OnePassMoments(max_order=2, shape=())
        acc.update_batch(rng.normal(size=17))
        clone = OnePassMoments.from_bytes(acc.to_bytes())
        assert np.array_equal(clone.mean, acc.mean)
        assert np.array_equal(clone.variance, acc.variance)

    def test_corrupt_payloads_rejected(self, rng):
        acc = OnePassMoments(max_order=2, shape=(4,))
        acc.update_batch(rng.normal(size=(10, 4)))
        blob = acc.to_bytes()
        with pytest.raises(ValueError, match="payload"):
            OnePassMoments.from_bytes(b"nope" + blob[4:])
        with pytest.raises(ValueError, match="truncated"):
            OnePassMoments.from_bytes(blob[:-8])

    def test_shard_moments_pack_round_trip(self, rng):
        partials = []
        for _ in range(3):  # 3 fixed classes
            pair = []
            for _ in range(2):
                acc = OnePassMoments(max_order=4, shape=(6,))
                acc.update_batch(rng.normal(size=(20, 6)))
                pair.append(acc)
            partials.append((pair[0], pair[1]))
        revived = unpack_shard_moments(pack_shard_moments(partials))
        assert len(revived) == 3
        for (acc0, acc1), (rev0, rev1) in zip(partials, revived):
            assert np.array_equal(acc0.central_moment(4),
                                  rev0.central_moment(4))
            assert np.array_equal(acc1.mean, rev1.mean)

    def test_packed_shard_garbage_rejected(self):
        with pytest.raises(ValueError, match="shard-moments"):
            unpack_shard_moments(b"garbage")

    def test_per_chunk_shard_moments_round_trip(self, rng):
        # Counter-sampler shards checkpoint UNMERGED per-chunk accumulator
        # lists (the SHM2 wire format); the round-trip must preserve both
        # the chunk structure and every accumulator bit-for-bit.
        partials = []
        for class_index in range(2):
            groups = []
            for _ in range(2):
                chunks = []
                for _ in range(3 - class_index):  # ragged chunk counts
                    acc = OnePassMoments(max_order=4, shape=(5,))
                    acc.update_batch(rng.normal(size=(12, 5)))
                    chunks.append(acc)
                groups.append(chunks)
            partials.append((groups[0], groups[1]))
        revived = unpack_shard_moments(pack_shard_moments(partials))
        assert len(revived) == 2
        for (chunks0, chunks1), (rev0, rev1) in zip(partials, revived):
            assert len(rev0) == len(chunks0) and len(rev1) == len(chunks1)
            for acc, rev in zip(chunks0 + chunks1, rev0 + rev1):
                assert acc.to_bytes() == rev.to_bytes()

    def test_per_chunk_payload_truncation_rejected(self, rng):
        acc = OnePassMoments(max_order=2, shape=(3,))
        acc.update_batch(rng.normal(size=(8, 3)))
        payload = pack_shard_moments([([acc], [acc])])
        assert payload.startswith(b"SHM2")
        with pytest.raises(ValueError, match="truncated"):
            unpack_shard_moments(payload[:-4])


class TestOrderTwoFastPath:
    def test_bit_identical_to_general_path(self, rng):
        """ROADMAP follow-up pin: the specialised max_order == 2 combine
        (no odd-order machinery) equals the general Pébay path exactly —
        same stream of batch and single-sample updates, bitwise-equal
        state throughout, bitwise-equal merges."""
        fast = OnePassMoments(max_order=2, shape=(11,))
        general = OnePassMoments(max_order=2, shape=(11,))
        # Shadow the dispatching method so every combine of `general`
        # walks the arbitrary-order code path instead.
        general._combine_order2 = (
            lambda n_a, n_b, n, mean_b, m2_b:
            general._combine_general(n_a, n_b, n, mean_b, [m2_b]))
        for size in (1, 7, 64, 129):
            batch = rng.normal(size=(size, 11))
            fast.update_batch(batch)
            general.update_batch(batch)
        single = rng.normal(size=11)
        fast.update(single)
        general.update(single)
        assert fast.count == general.count
        assert np.array_equal(fast.mean, general.mean)
        assert np.array_equal(fast.central_moment(2),
                              general.central_moment(2))
        merged_fast = fast.merge(fast)
        merged_general = general.merge(general)
        assert np.array_equal(merged_fast.central_moment(2),
                              merged_general.central_moment(2))

    def test_higher_orders_still_track_odd_sums(self, rng):
        # Exactness guard: order-4/6 accumulators must keep their odd
        # central sums (the pairwise merge needs them), so the skip is
        # strictly limited to max_order == 2.
        acc = OnePassMoments(max_order=4, shape=(3,))
        acc.update_batch(rng.normal(size=(50, 3)))
        assert len(acc._sums) == 3  # orders 2, 3, 4
        assert np.abs(acc.central_moment(3)).max() > 0


# ----------------------------------------------------------------------
# CampaignSpec hashing
# ----------------------------------------------------------------------
class TestCampaignSpec:
    def test_hash_is_stable_and_reproducible(self, small_benchmark,
                                             campaign_config):
        first = CampaignSpec.from_netlist(small_benchmark, campaign_config, 3)
        second = CampaignSpec.from_netlist(small_benchmark, campaign_config, 3)
        assert first.content_hash == second.content_hash
        assert len(first.content_hash) == 64

    def test_hash_covers_every_axis(self, small_benchmark, tiny_netlist,
                                    campaign_config):
        import dataclasses
        base = CampaignSpec.from_netlist(small_benchmark, campaign_config, 2)
        variants = [
            CampaignSpec.from_netlist(tiny_netlist, campaign_config, 2),
            CampaignSpec.from_netlist(
                small_benchmark,
                dataclasses.replace(campaign_config, seed=8), 2),
            CampaignSpec.from_netlist(
                small_benchmark,
                dataclasses.replace(campaign_config, n_traces=192), 2),
            CampaignSpec.from_netlist(small_benchmark, campaign_config, 5),
        ]
        hashes = {spec.content_hash for spec in variants}
        assert base.content_hash not in hashes
        assert len(hashes) == len(variants)

    def test_shard_count_normalised_to_chunk_cap(self, small_benchmark,
                                                 campaign_config):
        # 240 traces / 48-trace chunks = 5 chunks: requesting 8 shards is
        # the same campaign as requesting 5.
        capped = CampaignSpec.from_netlist(small_benchmark, campaign_config, 8)
        exact = CampaignSpec.from_netlist(small_benchmark, campaign_config, 5)
        assert capped.n_shards == 5
        assert capped.content_hash == exact.content_hash

    def test_streaming_resolved_into_hash(self, small_benchmark):
        # A serial two-pass run and a streamed run must never share a
        # cache entry: their t-values differ at the ~1e-12 level.
        auto = TvlaConfig(n_traces=100, n_fixed_classes=1, chunk_traces=2048)
        two_pass = CampaignSpec.from_netlist(small_benchmark, auto, 1)
        streamed = CampaignSpec.from_netlist(small_benchmark, auto, 1,
                                             force_streaming=True)
        assert two_pass.tvla.streaming is False
        assert streamed.tvla.streaming is True
        assert two_pass.content_hash != streamed.content_hash

    def test_json_round_trip(self, small_benchmark, campaign_config):
        spec = CampaignSpec.from_netlist(small_benchmark, campaign_config, 3)
        revived = CampaignSpec.from_json(spec.to_json())
        assert revived == spec
        assert revived.content_hash == spec.content_hash

    def test_tampered_spec_rejected(self, small_benchmark, campaign_config):
        spec = CampaignSpec.from_netlist(small_benchmark, campaign_config, 3)
        data = json.loads(spec.to_json())
        data["n_shards"] = 4  # stored hash no longer matches
        with pytest.raises(ValueError, match="hash mismatch"):
            CampaignSpec.from_json(json.dumps(data))

    def test_netlist_round_trip_is_assessable(self, small_benchmark,
                                              campaign_config):
        spec = CampaignSpec.from_netlist(small_benchmark, campaign_config, 2)
        rebuilt = spec.netlist()
        assert rebuilt.name == small_benchmark.name
        assert tuple(rebuilt.primary_inputs) == \
            tuple(small_benchmark.primary_inputs)
        assert len(rebuilt) == len(small_benchmark)


# ----------------------------------------------------------------------
# Task queue semantics
# ----------------------------------------------------------------------
class TestTaskQueue:
    def test_put_claim_ack(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        put = queue.put(b"payload")
        assert put.action == "inserted"
        task = queue.claim(worker="w1")
        assert task.task_id == put.task_id
        assert task.payload == b"payload"
        assert not task.redelivered
        assert queue.ack(task.task_id, task.lease_token, b"result")
        assert queue.outcome(put.task_id) == ("done", b"result", None)
        assert queue.claim() is None

    def test_keyed_put_is_idempotent(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        first = queue.put(b"a", key="k")
        second = queue.put(b"b", key="k")
        assert first.task_id == second.task_id
        assert (first.action, second.action) == ("inserted", "existing")
        assert queue.counts()["pending"] == 1

    def test_keyed_put_requeues_failed_tasks(self, tmp_path):
        # Resubmission must be able to recover a shard that exhausted its
        # retries on a transient cause: a keyed put of a failed task
        # resets it to pending with a fresh attempt budget.
        queue = TaskQueue(tmp_path / "q.sqlite", default_max_attempts=1)
        put = queue.put(b"work", key="k")
        task = queue.claim()
        assert queue.fail(task.task_id, task.lease_token, "boom") == "failed"
        requeued = queue.put(b"work", key="k")
        assert requeued.task_id == put.task_id
        assert requeued.action == "requeued"
        retry = queue.claim()
        assert retry is not None and retry.attempts == 1
        assert queue.ack(retry.task_id, retry.lease_token, b"ok")
        assert queue.outcome(put.task_id)[0] == "done"

    def test_expired_lease_is_redelivered(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        queue.put(b"work")
        dead = queue.claim(worker="dead", lease_seconds=0.01)
        time.sleep(0.05)
        alive = queue.claim(worker="alive")
        assert alive is not None
        assert alive.task_id == dead.task_id
        assert alive.redelivered
        assert alive.attempts == 2

    def test_ack_after_redelivery_first_wins(self, tmp_path):
        # Duplicate delivery: the slow worker's stale token must be a
        # no-op once the task was redelivered and completed elsewhere.
        queue = TaskQueue(tmp_path / "q.sqlite")
        task_id = queue.put(b"work").task_id
        slow = queue.claim(worker="slow", lease_seconds=0.01)
        time.sleep(0.05)
        fast = queue.claim(worker="fast")
        assert queue.ack(fast.task_id, fast.lease_token, b"fast-result")
        assert not queue.ack(slow.task_id, slow.lease_token, b"slow-result")
        assert queue.outcome(task_id) == ("done", b"fast-result", None)

    def test_fail_retries_until_budget_exhausted(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite", default_max_attempts=2)
        task_id = queue.put(b"poison").task_id
        first = queue.claim()
        assert queue.fail(first.task_id, first.lease_token, "boom 1") == \
            "retried"
        second = queue.claim()
        assert second.attempts == 2
        assert queue.fail(second.task_id, second.lease_token, "boom 2") == \
            "failed"
        status, _, error = queue.outcome(task_id)
        assert status == "failed"
        assert "boom 2" in error
        assert queue.claim() is None

    def test_expired_final_attempt_is_retired(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite", default_max_attempts=1)
        task_id = queue.put(b"work").task_id
        queue.claim(lease_seconds=0.01)
        time.sleep(0.05)
        assert queue.claim() is None  # not handed out again...
        assert queue.outcome(task_id)[0] == "failed"  # ...but retired

    def test_stale_fail_is_ignored(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        queue.put(b"work")
        slow = queue.claim(lease_seconds=0.01)
        time.sleep(0.05)
        fast = queue.claim()
        assert queue.fail(slow.task_id, slow.lease_token, "late") == "stale"
        assert queue.ack(fast.task_id, fast.lease_token, b"ok")

    def test_invalid_configuration_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TaskQueue(tmp_path / "q.sqlite", default_lease_seconds=0)
        with pytest.raises(ValueError):
            TaskQueue(tmp_path / "q.sqlite", default_max_attempts=0)
        queue = TaskQueue(tmp_path / "q.sqlite")
        with pytest.raises(ValueError):
            queue.put(b"x", max_attempts=0)
        with pytest.raises(KeyError):
            queue.outcome(12345)

    def test_keyed_put_requeues_done_tasks_only_on_request(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        first = queue.put(b"payload", key="k")
        task = queue.claim()
        assert queue.ack(task.task_id, task.lease_token, b"result")
        # Default: a done task is live — the put is a no-op.
        assert queue.put(b"payload", key="k").action == "existing"
        assert queue.outcome(first.task_id)[0] == "done"
        # requeue_done: the caller says the durable side-effect is gone
        # (gc evicted the checkpoint), so the stale completion is reset.
        outcome = queue.put(b"payload2", key="k", requeue_done=True)
        assert outcome.action == "requeued"
        status, result, error = queue.outcome(first.task_id)
        assert status == "pending" and result is None and error is None
        redelivered = queue.claim()
        assert redelivered.payload == b"payload2"
        assert redelivered.attempts == 1  # fresh budget

    def test_run_worker_drain(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        for value in range(3):
            queue.put(pickle.dumps((_double, (value,), {})))
        executed = run_worker(queue, drain=True)
        assert executed == 3
        assert queue.outstanding() == 0

    # -- lease renewal (the worker heartbeat) --------------------------
    def test_renew_extends_a_live_lease(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        queue.put(b"work")
        task = queue.claim(worker="w1", lease_seconds=0.2)
        before = queue.lease_info(task.task_id)
        assert before["renewals"] == 0
        assert queue.renew(task.task_id, task.lease_token,
                           lease_seconds=30.0)
        after = queue.lease_info(task.task_id)
        assert after["renewals"] == 1
        assert after["lease_expires"] > before["lease_expires"]
        assert after["heartbeat_at"] >= before["heartbeat_at"]
        # The renewed lease holds: no redelivery after the original span.
        time.sleep(0.25)
        assert queue.claim() is None
        assert queue.ack(task.task_id, task.lease_token, b"ok")

    def test_stale_renew_fails_like_stale_ack(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        queue.put(b"work")
        slow = queue.claim(worker="slow", lease_seconds=0.01)
        time.sleep(0.05)
        fast = queue.claim(worker="fast")
        # The redelivered claim rotated the token: the frozen worker's
        # renew must not resurrect its lease out from under `fast`.
        assert not queue.renew(slow.task_id, slow.lease_token)
        assert queue.renew(fast.task_id, fast.lease_token)
        assert queue.ack(fast.task_id, fast.lease_token, b"fast")
        # ...and renewing a finished task is stale too.
        assert not queue.renew(fast.task_id, fast.lease_token)

    def test_reclaim_resets_heartbeat_bookkeeping(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        queue.put(b"work")
        dead = queue.claim(worker="dead", lease_seconds=0.01)
        assert queue.renew(dead.task_id, dead.lease_token,
                           lease_seconds=0.01)
        time.sleep(0.05)
        alive = queue.claim(worker="alive")
        info = queue.lease_info(alive.task_id)
        assert info["renewals"] == 0  # fresh lease, fresh counters
        assert info["worker"] == "alive"
        assert queue.lease_info(99999) is None

    def test_run_worker_renews_through_long_tasks(self, tmp_path):
        # The PR 4 follow-up contract fix: the lease no longer needs to
        # outlast a task.  A 0.15s lease survives a 0.5s task because
        # run_worker heartbeats at half-lease intervals by default.
        queue = TaskQueue(tmp_path / "q.sqlite",
                          default_lease_seconds=0.15)
        task_id = queue.put(pickle.dumps((_nap, (0.5,), {}))).task_id
        executed = run_worker(queue, worker="renewer", drain=True)
        assert executed == 1
        info = queue.lease_info(task_id)
        assert info["status"] == "done"
        assert info["attempts"] == 1  # never redelivered
        assert info["renewals"] >= 1

    def test_run_worker_without_renewal_loses_long_tasks(self, tmp_path):
        # The inverse documents why renewal is the default: without it a
        # short lease expires mid-task, a competitor reclaims the task,
        # and the legacy worker's late ack is fenced out as stale.
        import threading
        queue = TaskQueue(tmp_path / "q.sqlite",
                          default_lease_seconds=0.15)
        task_id = queue.put(pickle.dumps((_nap, (0.5,), {}))).task_id
        legacy = threading.Thread(
            target=run_worker,
            kwargs=dict(queue=queue, worker="legacy", max_tasks=1,
                        renew_leases=False))
        legacy.start()
        time.sleep(0.3)  # legacy is mid-task, its lease already expired
        redelivered = queue.claim(worker="second")
        assert redelivered is not None
        assert redelivered.task_id == task_id
        assert redelivered.attempts == 2
        assert queue.ack(redelivered.task_id, redelivered.lease_token,
                         b"second-result")
        legacy.join(10)
        # The legacy worker's ack (0.2s later) changed nothing.
        assert queue.outcome(task_id) == ("done", b"second-result", None)
        assert queue.lease_info(task_id)["worker"] == "second"

    # -- claim-scan index ----------------------------------------------
    def test_claim_query_uses_lease_index(self, tmp_path):
        # The claim scan must stay O(log n) as queues grow: both OR
        # branches (pending, expired-lease) have to ride the composite
        # (status, lease_expires) index rather than scanning the table.
        queue = TaskQueue(tmp_path / "q.sqlite")
        for value in range(8):
            queue.put(pickle.dumps((_double, (value,), {})))
        with queue._connect() as conn:
            plan = "\n".join(row[3] for row in conn.execute(
                "EXPLAIN QUERY PLAN "
                "SELECT id, key, payload, attempts, max_attempts "
                "FROM tasks WHERE status = 'pending' "
                "OR (status = 'leased' AND lease_expires < ?) "
                "ORDER BY id LIMIT 1", (time.time(),)))
        assert "tasks_lease" in plan
        assert "SCAN tasks" not in plan.replace("SCAN tasks USING", "")

    def test_old_databases_gain_heartbeat_columns(self, tmp_path):
        # Queues created before the heartbeat columns existed must open
        # cleanly: __init__ backfills via ALTER TABLE.
        import sqlite3 as sqlite3_module
        path = tmp_path / "old.sqlite"
        with contextlib.closing(sqlite3_module.connect(path)) as conn:
            conn.executescript("""
                CREATE TABLE tasks (
                    id            INTEGER PRIMARY KEY AUTOINCREMENT,
                    key           TEXT UNIQUE,
                    payload       BLOB NOT NULL,
                    status        TEXT NOT NULL DEFAULT 'pending',
                    attempts      INTEGER NOT NULL DEFAULT 0,
                    max_attempts  INTEGER NOT NULL DEFAULT 3,
                    lease_token   TEXT,
                    lease_expires REAL,
                    worker        TEXT,
                    result        BLOB,
                    error         TEXT,
                    enqueued_at   REAL NOT NULL,
                    done_at       REAL
                );
                INSERT INTO tasks (payload, enqueued_at)
                VALUES (x'00', 1.0);
            """)
            conn.commit()
        queue = TaskQueue(path)
        task = queue.claim(worker="migrated")
        assert task is not None
        assert queue.renew(task.task_id, task.lease_token)
        assert queue.lease_info(task.task_id)["renewals"] == 1


def _double(value):
    """Module-level task body (queue payloads must be picklable)."""
    return 2 * value


def _nap(seconds):
    """Module-level task body that outlasts short leases."""
    time.sleep(seconds)
    return seconds


def _explode():
    """Module-level task body that always fails."""
    raise RuntimeError("intentional failure")


# ----------------------------------------------------------------------
# QueueExecutor through the unchanged sharding API
# ----------------------------------------------------------------------
class TestQueueExecutor:
    def test_futures_resolve(self, tmp_path):
        with QueueExecutor(tmp_path / "q.sqlite", n_workers=1) as pool:
            futures = [pool.submit(_double, value) for value in range(5)]
            assert [f.result(timeout=30) for f in futures] == \
                [0, 2, 4, 6, 8]

    def test_failures_propagate_as_exceptions(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite", default_max_attempts=1)
        with QueueExecutor(queue, n_workers=1) as pool:
            future = pool.submit(_explode)
            with pytest.raises(TaskFailedError, match="intentional failure"):
                future.result(timeout=30)

    def test_submit_after_shutdown_rejected(self, tmp_path):
        pool = QueueExecutor(tmp_path / "q.sqlite", n_workers=1)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut-down"):
            pool.submit(_double, 1)

    def test_sharded_assessment_via_queue(self, small_benchmark,
                                          campaign_config, tmp_path):
        # The tentpole seam: zero API change — a queue-backed executor
        # drops into assess_leakage_sharded and matches serial ~1e-12.
        reference = assess_leakage(small_benchmark, campaign_config)
        with QueueExecutor(tmp_path / "q.sqlite", n_workers=2) as pool:
            sharded = assess_leakage_sharded(small_benchmark,
                                             campaign_config,
                                             n_shards=3, executor=pool)
        np.testing.assert_allclose(sharded.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)
        assert sharded.n_shards == 3

    def test_assess_many_via_queue(self, small_benchmark, tiny_netlist,
                                   campaign_config, tmp_path):
        with QueueExecutor(tmp_path / "q.sqlite", n_workers=2) as pool:
            results = assess_many([small_benchmark, tiny_netlist],
                                  campaign_config, n_shards=2, executor=pool)
        for netlist in (small_benchmark, tiny_netlist):
            serial = assess_leakage_sharded(netlist, campaign_config,
                                            n_shards=2, executor="serial")
            assert np.array_equal(results[netlist.name].t_values,
                                  serial.t_values)


class TestExecutorLifecycle:
    def test_owned_pool_shut_down_when_worker_raises(self, small_benchmark,
                                                     campaign_config,
                                                     monkeypatch):
        # Satellite pin: a raising shard must not leak an owned pool (nor
        # leave its siblings running) — shutdown(cancel_futures) happens
        # on the failure path.
        from concurrent.futures import ThreadPoolExecutor
        from repro.tvla import sharding

        created = []

        class RecordingPool(ThreadPoolExecutor):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)
                self.cancelled_on_failure = False

            def shutdown(self, wait=True, *, cancel_futures=False):
                if cancel_futures:
                    self.cancelled_on_failure = True
                super().shutdown(wait=wait, cancel_futures=cancel_futures)

        def poisoned(*args, **kwargs):
            raise RuntimeError("shard worker exploded")

        monkeypatch.setattr(sharding, "ThreadPoolExecutor", RecordingPool)
        monkeypatch.setattr(sharding, "_shard_moments", poisoned)
        with pytest.raises(RuntimeError, match="shard worker exploded"):
            assess_leakage_sharded(small_benchmark, campaign_config,
                                   n_shards=3, executor="thread")
        assert len(created) == 1
        assert created[0]._shutdown
        assert created[0].cancelled_on_failure

    def test_caller_supplied_pool_left_running(self, small_benchmark,
                                               campaign_config, monkeypatch):
        from concurrent.futures import ThreadPoolExecutor
        from repro.tvla import sharding

        def poisoned(*args, **kwargs):
            raise RuntimeError("shard worker exploded")

        monkeypatch.setattr(sharding, "_shard_moments", poisoned)
        with ThreadPoolExecutor(max_workers=1) as pool:
            with pytest.raises(RuntimeError, match="exploded"):
                assess_leakage_sharded(small_benchmark, campaign_config,
                                       n_shards=2, executor=pool)
            assert not pool._shutdown  # caller owns its lifecycle


# ----------------------------------------------------------------------
# Campaign runner: submit / work / resume / collect
# ----------------------------------------------------------------------
class TestCampaignRunner:
    def test_distributed_campaign_matches_serial(self, small_benchmark,
                                                 campaign_config,
                                                 campaign_root):
        reference = assess_leakage(small_benchmark, campaign_config)
        result = run_campaign(campaign_root, small_benchmark,
                              campaign_config, n_shards=3, n_workers=2)
        np.testing.assert_allclose(result.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(result.mean_abs_t, reference.mean_abs_t,
                                   rtol=1e-12, atol=1e-12)
        assert result.n_shards == 3

    def test_higher_order_campaign(self, tiny_netlist, campaign_root):
        config = TvlaConfig(n_traces=200, n_fixed_classes=1, seed=3,
                            chunk_traces=50, tvla_order=2)
        reference = assess_leakage(tiny_netlist, config)
        result = run_campaign(campaign_root, tiny_netlist, config,
                              n_shards=2, n_workers=1)
        np.testing.assert_allclose(result.order_t_values[2],
                                   reference.order_t_values[2],
                                   rtol=1e-12, atol=1e-12)

    def test_resume_from_checkpoint_bit_identical(self, small_benchmark,
                                                  campaign_config, tmp_path):
        # Run shards 0-1, "crash", resubmit, finish: must equal an
        # uninterrupted campaign bit for bit (same partials, same merge
        # order).
        interrupted_root = tmp_path / "interrupted"
        clean_root = tmp_path / "clean"
        outcome = submit_campaign(interrupted_root, netlist=small_benchmark,
                                  config=campaign_config, n_shards=3)
        assert outcome.status == "submitted"
        assert outcome.n_shards_total == 3
        run_worker(campaign_queue(interrupted_root), max_tasks=2, drain=True)
        paths = CampaignPaths(interrupted_root, outcome.spec_hash)
        done_before = [k for k in range(3) if paths.shard_path(k).exists()]
        assert len(done_before) == 2

        resumed = submit_campaign(interrupted_root, netlist=small_benchmark,
                                  config=campaign_config, n_shards=3)
        assert resumed.status == "resumed"
        assert resumed.spec_hash == outcome.spec_hash
        assert resumed.n_shards_done == 2
        assert resumed.n_enqueued == 0  # idempotent keys: already queued
        run_worker(campaign_queue(interrupted_root), drain=True)
        result = collect_result(interrupted_root, outcome.spec_hash,
                                timeout=60)

        clean = run_campaign(clean_root, small_benchmark, campaign_config,
                             n_shards=3, n_workers=1)
        _assert_assessments_equal(result, clean)

    def test_worker_killed_mid_shard_recovers(self, small_benchmark,
                                              campaign_config,
                                              campaign_root):
        # Fault injection: a worker claims a shard and dies (never acks).
        # Its lease expires, a healthy worker reclaims the shard, and the
        # campaign converges to the serial verdict.
        outcome = submit_campaign(campaign_root, netlist=small_benchmark,
                                  config=campaign_config, n_shards=3)
        queue = campaign_queue(campaign_root)
        doomed = queue.claim(worker="doomed", lease_seconds=0.05)
        assert doomed is not None
        time.sleep(0.1)  # the dead worker's lease expires
        run_worker(queue, worker="healthy", drain=True)
        result = collect_result(campaign_root, outcome.spec_hash, timeout=60)
        reference = assess_leakage(small_benchmark, campaign_config)
        np.testing.assert_allclose(result.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)

    def test_duplicate_delivery_single_checkpoint(self, small_benchmark,
                                                  campaign_config,
                                                  campaign_root):
        # Fault injection: a slow worker finishes *after* the shard was
        # redelivered and completed elsewhere.  Its late ack is a no-op
        # and the checkpoint is written exactly once (atomic publish +
        # idempotent recompute guard).
        outcome = submit_campaign(campaign_root, netlist=small_benchmark,
                                  config=campaign_config, n_shards=3)
        queue = campaign_queue(campaign_root)
        slow = queue.claim(worker="slow", lease_seconds=0.05)
        time.sleep(0.1)
        run_worker(queue, worker="fast", drain=True)  # redelivery completes
        # The slow worker now executes the same payload and tries to ack.
        fn, args, kwargs = pickle.loads(slow.payload)
        late_result = fn(*args, **kwargs)
        assert late_result["skipped"] is True  # checkpoint already there
        assert not queue.ack(slow.task_id, slow.lease_token,
                             pickle.dumps(late_result))
        result = collect_result(campaign_root, outcome.spec_hash, timeout=60)
        reference = assess_leakage(small_benchmark, campaign_config)
        np.testing.assert_allclose(result.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)

    def test_cache_hit_skips_work_and_is_bit_identical(self, small_benchmark,
                                                       campaign_config,
                                                       campaign_root):
        first = run_campaign(campaign_root, small_benchmark, campaign_config,
                             n_shards=3, n_workers=1)
        resubmitted = submit_campaign(campaign_root, netlist=small_benchmark,
                                      config=campaign_config, n_shards=3)
        assert resubmitted.status == "cached"
        assert resubmitted.n_enqueued == 0
        again = collect_result(campaign_root, resubmitted.spec_hash)
        _assert_assessments_equal(first, again)

    def test_failed_shard_surfaces_worker_traceback(self, small_benchmark,
                                                    campaign_config,
                                                    campaign_root):
        outcome = submit_campaign(campaign_root, netlist=small_benchmark,
                                  config=campaign_config, n_shards=2)
        queue = campaign_queue(campaign_root)
        # Poison shard 0 by exhausting its attempt budget with fails.
        paths = CampaignPaths(campaign_root, outcome.spec_hash)
        for _ in range(queue.default_max_attempts):
            task = queue.claim()
            if task.key == paths.shard_key(0):
                verdict = queue.fail(task.task_id, task.lease_token,
                                     "simulated worker crash")
            else:  # execute the healthy shard normally
                fn, args, kwargs = pickle.loads(task.payload)
                queue.ack(task.task_id, task.lease_token,
                          pickle.dumps(fn(*args, **kwargs)))
        assert verdict == "failed"
        with pytest.raises(CampaignError, match="simulated worker crash"):
            collect_result(campaign_root, outcome.spec_hash, timeout=5)
        # Resubmission recovers the poisoned shard: the failed task is
        # requeued with a fresh attempt budget and the campaign completes.
        retried = submit_campaign(campaign_root, netlist=small_benchmark,
                                  config=campaign_config, n_shards=2)
        assert retried.n_enqueued == 1
        run_worker(queue, drain=True)
        result = collect_result(campaign_root, outcome.spec_hash, timeout=60)
        reference = assess_leakage(small_benchmark, campaign_config)
        np.testing.assert_allclose(result.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)

    def test_status_and_listing(self, small_benchmark, campaign_config,
                                campaign_root):
        outcome = submit_campaign(campaign_root, netlist=small_benchmark,
                                  config=campaign_config, n_shards=3)
        status = campaign_status(campaign_root, outcome.spec_hash)
        assert status.state == "running"
        assert status.n_shards_done == 0
        run_worker(campaign_queue(campaign_root), drain=True)
        collect_result(campaign_root, outcome.spec_hash, timeout=60)
        status = campaign_status(campaign_root, outcome.spec_hash)
        assert status.state == "complete"
        assert status.n_shards_done == 3
        listed = list_campaigns(campaign_root)
        assert [s.spec_hash for s in listed] == [outcome.spec_hash]

    def test_submit_requires_netlist_or_spec(self, campaign_root):
        with pytest.raises(ValueError, match="netlist or a spec"):
            submit_campaign(campaign_root)


# ----------------------------------------------------------------------
# Sampler disciplines through the durable runner (PR 8)
# ----------------------------------------------------------------------
class TestSamplerCampaigns:
    """Counter/sequence sampling through the spec, queue and resume path.

    The counter discipline upgrades the campaign contract from ~1e-12
    closeness to bitwise equality: a queue-backed distributed campaign,
    a killed-and-resumed campaign and the in-process serial assessment
    all produce ``np.array_equal`` t-values.  Sequence campaigns keep
    their historical contract, and format-2 spec files (which predate the
    ``sampler`` knob) keep loading as sequence campaigns.
    """

    def test_counter_queue_campaign_is_bitwise_serial(self, small_benchmark,
                                                      campaign_root):
        config = TvlaConfig(sampler="counter", **CAMPAIGN_TVLA)
        reference = assess_leakage(small_benchmark, config)
        result = run_campaign(campaign_root, small_benchmark, config,
                              n_shards=3, n_workers=2)
        assert np.array_equal(result.t_values, reference.t_values)
        assert np.array_equal(result.mean_abs_t, reference.mean_abs_t)
        assert np.array_equal(result.degrees_of_freedom,
                              reference.degrees_of_freedom)

    @pytest.mark.parametrize("sampler", ["counter", "sequence"])
    def test_killed_and_resumed_campaign_bit_identical(self, small_benchmark,
                                                       tmp_path, sampler):
        # Kill after one shard, resubmit, finish: equal to an
        # uninterrupted campaign bit for bit, under BOTH disciplines
        # (the checkpointed partials and the merge order are identical).
        config = TvlaConfig(sampler=sampler, **CAMPAIGN_TVLA)
        interrupted_root = tmp_path / "interrupted"
        clean_root = tmp_path / "clean"
        outcome = submit_campaign(interrupted_root, netlist=small_benchmark,
                                  config=config, n_shards=3)
        run_worker(campaign_queue(interrupted_root), max_tasks=1, drain=True)
        resumed = submit_campaign(interrupted_root, netlist=small_benchmark,
                                  config=config, n_shards=3)
        assert resumed.status == "resumed"
        assert resumed.n_shards_done == 1
        run_worker(campaign_queue(interrupted_root), drain=True)
        result = collect_result(interrupted_root, outcome.spec_hash,
                                timeout=60)
        clean = run_campaign(clean_root, small_benchmark, config,
                             n_shards=3, n_workers=1)
        _assert_assessments_equal(result, clean)
        if sampler == "counter":
            # ...and for counter, the campaign is also bitwise-serial.
            reference = assess_leakage(small_benchmark, config)
            assert np.array_equal(result.t_values, reference.t_values)

    def test_sampler_separates_content_hashes(self, small_benchmark,
                                              campaign_config):
        import dataclasses
        counter = CampaignSpec.from_netlist(small_benchmark,
                                            campaign_config, 2)
        sequence = CampaignSpec.from_netlist(
            small_benchmark,
            dataclasses.replace(campaign_config, sampler="sequence"), 2)
        assert counter.tvla.sampler == "counter"
        assert counter.content_hash != sequence.content_hash

    def test_format2_spec_loads_as_sequence_campaign(self, small_benchmark,
                                                     campaign_config):
        # A spec file written before the sampler knob existed: format 2,
        # no "sampler" key, content hash over the format-2 payload.  It
        # must load as a sequence campaign and re-verify its stored hash.
        import dataclasses
        import hashlib
        legacy_config = dataclasses.replace(campaign_config,
                                            sampler="sequence")
        spec = CampaignSpec.from_netlist(small_benchmark, legacy_config, 3)
        data = json.loads(spec.to_json())
        data["format"] = 2
        del data["tvla"]["sampler"]
        data["content_hash"] = hashlib.sha256(
            spec.canonical_payload(2).encode("utf-8")).hexdigest()
        loaded = CampaignSpec.from_json(json.dumps(data))
        assert loaded == spec
        assert loaded.tvla.sampler == "sequence"

    def test_format2_tampering_still_detected(self, small_benchmark,
                                              campaign_config):
        import dataclasses
        import hashlib
        legacy_config = dataclasses.replace(campaign_config,
                                            sampler="sequence")
        spec = CampaignSpec.from_netlist(small_benchmark, legacy_config, 3)
        data = json.loads(spec.to_json())
        data["format"] = 2
        del data["tvla"]["sampler"]
        data["content_hash"] = hashlib.sha256(
            spec.canonical_payload(2).encode("utf-8")).hexdigest()
        data["n_shards"] = 5
        with pytest.raises(ValueError, match="hash mismatch"):
            CampaignSpec.from_json(json.dumps(data))

    def test_unknown_spec_format_rejected(self, small_benchmark,
                                          campaign_config):
        spec = CampaignSpec.from_netlist(small_benchmark, campaign_config, 2)
        data = json.loads(spec.to_json())
        data["format"] = 1
        with pytest.raises(ValueError, match="unsupported campaign spec"):
            CampaignSpec.from_json(json.dumps(data))

    def test_cli_sampler_flag(self, campaign_root, capsys, small_benchmark,
                              campaign_config):
        import dataclasses
        args = TestCli()._submit_args(campaign_root) + \
            ["--sampler", "sequence"]
        assert cli_main(args) == 0
        spec_hash = capsys.readouterr().out.split()[1]
        assert cli_main(["work", "--root", str(campaign_root),
                         "--drain"]) == 0
        result = collect_result(campaign_root, spec_hash, timeout=60)
        reference = assess_leakage(
            small_benchmark,
            dataclasses.replace(campaign_config, sampler="sequence"))
        np.testing.assert_allclose(result.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# The slow-but-alive worker: SIGSTOP past lease expiry
# ----------------------------------------------------------------------
class TestSlowButAliveWorker:
    @pytest.mark.parametrize("sampler", ["counter", "sequence"])
    def test_sigstopped_worker_is_fenced_out(self, tmp_path, monkeypatch,
                                             small_benchmark, sampler):
        """SIGSTOP a worker mid-shard until its lease expires: the shard
        is reclaimed and completed elsewhere, the resumed worker's stale
        ack is rejected, and the result stays bit-identical — under both
        samplers."""
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        monkeypatch.setenv("POLARIS_SHARD_DELAY", "1.1")
        root = tmp_path / "runs"
        config = TvlaConfig(sampler=sampler, **CAMPAIGN_TVLA)
        outcome = submit_campaign(root, netlist=small_benchmark,
                                  config=config, n_shards=2)
        queue = campaign_queue(root)
        src_dir = str(Path(__file__).resolve().parents[1] / "src")

        # A pre-renewal worker (--no-renew) on a lease shorter than one
        # 1.1s shard: it can only survive by finishing fast — and we
        # freeze it instead.
        frozen = subprocess.Popen(
            [sys.executable, "-m", "repro.campaign.cli", "work",
             "--root", str(root), "--max-tasks", "1",
             "--lease-seconds", "0.6", "--no-renew"],
            env={**os.environ, "PYTHONPATH": src_dir,
                 "POLARIS_SHARD_DELAY": "1.1"},
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if queue.counts()["leased"] >= 1:
                    break
                time.sleep(0.02)
            assert queue.counts()["leased"] == 1, \
                "frozen worker never claimed a shard"
            stopped_id = next(
                task_id for task_id in (1, 2)
                if queue.lease_info(task_id)["status"] == "leased")
            time.sleep(0.25)  # well inside the 1.1s shard
            os.kill(frozen.pid, signal.SIGSTOP)

            # A stopped process stops renewing too: the lease expires
            # while the worker is alive-but-frozen, and a healthy worker
            # reclaims and completes the shard.
            time.sleep(0.7)
            executed = run_worker(queue, worker="rescuer", drain=True)
            assert executed == 2
            done = queue.lease_info(stopped_id)
            assert done["status"] == "done"
            assert done["worker"] == "rescuer"
            assert done["attempts"] == 2  # frozen claim + reclaim

            # Thaw the frozen worker: it finishes its sleep, recomputes
            # the (identical) checkpoint, and tries to ack with a stale
            # token — which must change nothing.
            os.kill(frozen.pid, signal.SIGCONT)
            stdout, _ = frozen.communicate(timeout=30)
            assert frozen.returncode == 0
            assert "1 task(s) executed" in stdout
            unchanged = queue.lease_info(stopped_id)
            assert unchanged == done  # stale ack rejected: row untouched
        finally:
            if frozen.poll() is None:
                with contextlib.suppress(ProcessLookupError):
                    os.kill(frozen.pid, signal.SIGCONT)
                frozen.kill()
                frozen.wait(10)

        faulted = collect_result(root, outcome.spec_hash, timeout=30)

        # Bit-identical to an undisturbed campaign of the same layout.
        monkeypatch.delenv("POLARIS_SHARD_DELAY")
        clean = run_campaign(tmp_path / "clean", small_benchmark, config,
                             n_shards=2)
        assert np.array_equal(faulted.t_values, clean.t_values)
        assert np.array_equal(faulted.degrees_of_freedom,
                              clean.degrees_of_freedom)


# ----------------------------------------------------------------------
# Content-addressed result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_round_trip_bit_identical(self, small_benchmark, campaign_config,
                                      tmp_path):
        assessment = assess_leakage(small_benchmark, campaign_config)
        revived = assessment_from_dict(assessment_to_dict(assessment))
        _assert_assessments_equal(assessment, revived)
        assert revived.elapsed_seconds == assessment.elapsed_seconds
        assert revived.t_values.dtype == assessment.t_values.dtype

    def test_store_is_write_once(self, small_benchmark, campaign_config,
                                 tmp_path):
        store = ResultStore(tmp_path / "store")
        first = assess_leakage(small_benchmark, campaign_config)
        key = "ab" * 32
        assert store.put(key, first, metadata={"origin": "test"})
        second = assess_leakage(
            small_benchmark,
            TvlaConfig(**{**CAMPAIGN_TVLA, "seed": 99}))
        assert not store.put(key, second)  # first write wins
        assert np.array_equal(store.get(key).t_values, first.t_values)
        assert store.metadata(key) == {"origin": "test"}
        assert list(store.keys()) == [key]
        assert len(store) == 1

    def test_missing_and_invalid_keys(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("cd" * 32) is None
        assert not store.has("cd" * 32)
        with pytest.raises(ValueError, match="content hash"):
            store.get("../../etc/passwd")
        with pytest.raises(ValueError, match="content hash"):
            store.get("xyz")

    def test_corrupt_object_rejected(self, small_benchmark, campaign_config,
                                     tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "ef" * 32
        store.put(key, assess_leakage(small_benchmark, campaign_config))
        store.object_path(key).write_text("{ not json")
        with pytest.raises(ValueError, match="corrupt"):
            store.get(key)

    def test_as_result_store_coercion(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert as_result_store(store) is store
        assert as_result_store(tmp_path / "store").root == store.root


# ----------------------------------------------------------------------
# Store wiring: assess_many and protect_design
# ----------------------------------------------------------------------
class TestStoreWiring:
    def test_assess_many_serves_cache_without_simulating(
            self, small_benchmark, tiny_netlist, campaign_config, tmp_path,
            monkeypatch):
        store = tmp_path / "store"
        first = assess_many([small_benchmark, tiny_netlist], campaign_config,
                            n_shards=2, executor="thread", store=store)

        from repro.tvla import sharding

        def no_simulation(*args, **kwargs):
            raise AssertionError("cache hit must not simulate")

        monkeypatch.setattr(sharding, "_shard_moments", no_simulation)
        monkeypatch.setattr(sharding, "_shard_moments_rebuilt", no_simulation)
        second = assess_many([small_benchmark, tiny_netlist], campaign_config,
                             n_shards=2, executor="thread", store=store)
        for name in first:
            _assert_assessments_equal(first[name], second[name])

    def test_assess_many_partial_cache(self, small_benchmark, tiny_netlist,
                                       campaign_config, tmp_path):
        store = tmp_path / "store"
        only_tiny = assess_many([tiny_netlist], campaign_config, n_shards=2,
                                store=store)
        both = assess_many([small_benchmark, tiny_netlist], campaign_config,
                           n_shards=2, store=store)
        assert np.array_equal(both[tiny_netlist.name].t_values,
                              only_tiny[tiny_netlist.name].t_values)
        assert set(both) == {small_benchmark.name, tiny_netlist.name}

    def test_protect_design_before_after_cached(self, trained_polaris,
                                                tiny_netlist, tmp_path,
                                                monkeypatch):
        from repro.core import pipeline, protect_design

        calls = {"count": 0}
        real_assess = pipeline.assess_leakage

        def counting_assess(*args, **kwargs):
            calls["count"] += 1
            return real_assess(*args, **kwargs)

        monkeypatch.setattr(pipeline, "assess_leakage", counting_assess)
        store = tmp_path / "store"
        first = protect_design(tiny_netlist, trained_polaris, store=store)
        assert calls["count"] == 2  # before + after were really assessed
        second = protect_design(tiny_netlist, trained_polaris, store=store)
        assert calls["count"] == 2  # both served from the store
        _assert_assessments_equal(first.before, second.before)
        _assert_assessments_equal(first.after, second.after)
        assert first.leakage == second.leakage


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def _submit_args(self, root):
        return ["submit", "--root", str(root),
                "--benchmark", "des3", "--scale", "0.25",
                "--design-seed", "99", "--traces", "240",
                "--chunk-traces", "48", "--classes", "2", "--seed", "7",
                "--shards", "3"]

    def test_submit_work_status_result(self, campaign_root, capsys,
                                       small_benchmark, campaign_config):
        assert cli_main(self._submit_args(campaign_root)) == 0
        spec_hash = capsys.readouterr().out.split()[1]
        assert cli_main(["work", "--root", str(campaign_root),
                         "--drain"]) == 0
        assert "3 task(s) executed" in capsys.readouterr().out
        assert cli_main(["status", "--root", str(campaign_root)]) == 0
        assert "3/3 shards" in capsys.readouterr().out
        assert cli_main(["result", "--root", str(campaign_root),
                         spec_hash, "--timeout", "30"]) == 0
        out = capsys.readouterr().out
        assert "des3" in out and "leaky gates" in out
        # The CLI campaign equals the serial in-process assessment: the
        # fixture small_benchmark is the same (des3, 0.25, 99) design.
        result = collect_result(campaign_root, spec_hash)
        reference = assess_leakage(small_benchmark, campaign_config)
        np.testing.assert_allclose(result.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)

    def test_resubmission_reports_cached(self, campaign_root, capsys):
        assert cli_main(self._submit_args(campaign_root)) == 0
        spec_hash = capsys.readouterr().out.split()[1]
        assert cli_main(["work", "--root", str(campaign_root),
                         "--drain"]) == 0
        assert cli_main(["result", "--root", str(campaign_root),
                         spec_hash]) == 0
        capsys.readouterr()
        assert cli_main(self._submit_args(campaign_root)) == 0
        assert "cached" in capsys.readouterr().out

    def test_result_json_round_trips(self, campaign_root, capsys):
        assert cli_main(self._submit_args(campaign_root)) == 0
        spec_hash = capsys.readouterr().out.split()[1]
        cli_main(["work", "--root", str(campaign_root), "--drain"])
        capsys.readouterr()
        assert cli_main(["result", "--root", str(campaign_root), spec_hash,
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        revived = assessment_from_dict(payload)
        assert revived.design_name == "des3"
        assert revived.n_shards == 3

    def test_status_empty_root(self, campaign_root, capsys):
        assert cli_main(["status", "--root", str(campaign_root)]) == 0
        assert "no campaigns" in capsys.readouterr().out

    def test_status_json_stable_keys(self, campaign_root, capsys):
        # The machine-readable contract CI scripts rely on: a JSON array
        # with exactly these keys per campaign — no text scraping.
        assert cli_main(self._submit_args(campaign_root)) == 0
        spec_hash = capsys.readouterr().out.split()[1]
        assert cli_main(["work", "--root", str(campaign_root),
                         "--drain"]) == 0
        capsys.readouterr()
        assert cli_main(["status", "--root", str(campaign_root),
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        entry = payload[0]
        assert sorted(entry) == ["complete", "design", "failed_shards",
                                 "n_shards_done", "n_shards_total",
                                 "n_traces", "spec_hash", "state"]
        assert entry["spec_hash"] == spec_hash
        assert entry["design"] == "des3"
        assert entry["n_shards_done"] == entry["n_shards_total"] == 3
        assert entry["state"] == "merging" and entry["complete"] is False
        assert entry["failed_shards"] == []
        # After collection the same keys flip to the complete state.
        assert cli_main(["result", "--root", str(campaign_root),
                         spec_hash, "--timeout", "30"]) == 0
        capsys.readouterr()
        assert cli_main(["status", "--root", str(campaign_root),
                         spec_hash, "--json"]) == 0
        entry = json.loads(capsys.readouterr().out)[0]
        assert entry["state"] == "complete" and entry["complete"] is True

    def test_status_json_empty_root_is_empty_array(self, campaign_root,
                                                   capsys):
        assert cli_main(["status", "--root", str(campaign_root),
                         "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_result_timeout_is_an_error(self, campaign_root, capsys):
        assert cli_main(self._submit_args(campaign_root)) == 0
        spec_hash = capsys.readouterr().out.split()[1]
        # No worker ran: collecting with a tiny timeout must fail cleanly.
        assert cli_main(["result", "--root", str(campaign_root), spec_hash,
                         "--timeout", "0.2"]) == 1
        assert "missing shards" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Optional distributed adapters
# ----------------------------------------------------------------------
class TestAdapters:
    def test_guarded_imports(self):
        from repro.campaign import (OptionalDependencyError, dask_executor,
                                    mpi_executor)
        for factory, module in ((dask_executor, "distributed"),
                                (mpi_executor, "mpi4py")):
            try:
                __import__(module)
            except ImportError:
                with pytest.raises(OptionalDependencyError,
                                   match="QueueExecutor"):
                    factory()
            else:  # pragma: no cover - depends on the environment
                pytest.skip(f"{module} installed; adapter exercised there")

    def test_cross_process_proxy(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor
        from repro.campaign import CrossProcessExecutor
        inner = ThreadPoolExecutor(max_workers=1)
        proxy = CrossProcessExecutor(inner, owns_inner=True)
        assert proxy.cross_process
        assert proxy.submit(_double, 21).result(timeout=10) == 42
        proxy.shutdown()
        assert inner._shutdown


# ----------------------------------------------------------------------
# Daemon worker mode (--forever) and idle cutoffs
# ----------------------------------------------------------------------
class TestWorkerDaemonMode:
    def test_forever_rejects_drain(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_worker(queue, forever=True, drain=True)

    def test_forever_with_max_idle_exits_after_serving(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        for value in range(3):
            queue.put(pickle.dumps((_double, (value,), {})))
        started = time.monotonic()
        executed = run_worker(queue, forever=True, poll_interval=0.01,
                              max_poll_interval=0.05, max_idle=0.3)
        elapsed = time.monotonic() - started
        assert executed == 3
        assert queue.outstanding() == 0
        # Exited via the idle cutoff, not instantly and not hanging.
        assert 0.3 <= elapsed < 10.0

    def test_max_idle_applies_without_forever(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        executed = run_worker(queue, poll_interval=0.01, max_idle=0.1)
        assert executed == 0

    def test_long_poll_interval_valid_without_forever(self, tmp_path):
        """The backoff ceiling only constrains forever mode: a plain
        worker may poll slower than the default max_poll_interval."""
        queue = TaskQueue(tmp_path / "q.sqlite")
        queue.put(pickle.dumps((_double, (4,), {})))
        assert run_worker(queue, poll_interval=30.0, max_tasks=1) == 1
        with pytest.raises(ValueError, match="max_poll_interval"):
            run_worker(queue, forever=True, poll_interval=30.0)

    def test_backoff_reduces_claim_pressure_while_idle(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        claims = {"n": 0}
        real_claim = queue.claim

        def counting_claim(**kwargs):
            claims["n"] += 1
            return real_claim(**kwargs)

        queue.claim = counting_claim
        run_worker(queue, forever=True, poll_interval=0.02,
                   max_poll_interval=0.2, max_idle=0.6)
        backoff_claims = claims["n"]
        claims["n"] = 0
        run_worker(queue, poll_interval=0.02, max_idle=0.6)
        flat_claims = claims["n"]
        # Exponential backoff (0.02 -> 0.04 -> ... -> 0.2) must poll the
        # queue strictly less often than the flat 20 ms loop over the same
        # idle window.
        assert backoff_claims < flat_claims

    def test_backoff_resets_after_a_task(self, tmp_path):
        queue = TaskQueue(tmp_path / "q.sqlite")
        sleeps = []

        def run():
            return run_worker(queue, forever=True, poll_interval=0.01,
                              max_poll_interval=0.08, max_idle=0.25)

        real_sleep = time.sleep

        def recording_sleep(seconds):
            sleeps.append(round(seconds, 4))
            real_sleep(min(seconds, 0.02))

        import repro.campaign.queue as queue_module
        original = queue_module.time.sleep
        queue_module.time.sleep = recording_sleep
        try:
            queue.put(pickle.dumps((_double, (1,), {})))
            run()
        finally:
            queue_module.time.sleep = original
        # The first idle sleep after serving the task restarts at the
        # configured poll_interval and doubles from there.
        assert sleeps[0] == pytest.approx(0.01)
        assert max(sleeps) <= 0.08 + 1e-9

    def test_cli_forever_max_idle(self, campaign_root, capsys):
        assert cli_main(TestCli()._submit_args(campaign_root)) == 0
        capsys.readouterr()
        assert cli_main(["work", "--root", str(campaign_root), "--forever",
                         "--poll-interval", "0.02",
                         "--max-poll-interval", "0.1",
                         "--max-idle", "0.5"]) == 0
        assert "3 task(s) executed" in capsys.readouterr().out

    def test_cli_forever_drain_conflict(self, campaign_root, capsys):
        assert cli_main(["work", "--root", str(campaign_root), "--forever",
                         "--drain"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Store eviction (prune) and root gc
# ----------------------------------------------------------------------
class TestStorePrune:
    def _store_with(self, tmp_path, stamps):
        """A store holding one tiny assessment per (key, created_at)."""
        from repro.tvla import LeakageAssessment

        store = ResultStore(tmp_path / "store")
        for key, stamp in stamps.items():
            assessment = LeakageAssessment(
                design_name=f"d_{key[:4]}", gate_names=("g1",),
                t_values=np.array([1.0]),
                degrees_of_freedom=np.array([3.0]), threshold=4.5,
                n_traces=16, elapsed_seconds=0.0)
            assert store.put(key, assessment)
            # Rewrite the recorded created_at to the pinned stamp.
            path = store.object_path(key)
            data = json.loads(path.read_text())
            data["created_at"] = stamp
            path.write_text(json.dumps(data, sort_keys=True))
        return store

    def test_prune_by_age_keeps_young_objects(self, tmp_path):
        now = 1_000_000.0
        old, young = "a" * 64, "b" * 64
        store = self._store_with(tmp_path, {old: now - 500, young: now - 10})
        pruned = store.prune(max_age=100, now=now)
        assert pruned == [old]
        assert not store.has(old) and store.has(young)
        assert len(store) == 1

    def test_prune_honours_keep_hashes(self, tmp_path):
        now = 1_000_000.0
        first, second = "a" * 64, "b" * 64
        store = self._store_with(tmp_path,
                                 {first: now - 500, second: now - 500})
        pruned = store.prune(max_age=100, keep_hashes=[first], now=now)
        assert pruned == [second]
        assert store.has(first)

    def test_prune_all_without_age(self, tmp_path):
        store = self._store_with(tmp_path, {"a" * 64: 1.0, "b" * 64: 2.0})
        assert sorted(store.prune()) == ["a" * 64, "b" * 64]
        assert len(store) == 0

    def test_dry_run_deletes_nothing(self, tmp_path):
        store = self._store_with(tmp_path, {"a" * 64: 1.0})
        assert store.prune(dry_run=True) == ["a" * 64]
        assert store.has("a" * 64)

    def test_pruned_key_can_be_rewritten(self, tmp_path):
        """Write-once applies to live objects; eviction reopens the slot."""
        from repro.tvla import LeakageAssessment

        store = self._store_with(tmp_path, {"a" * 64: 1.0})
        store.prune()
        assessment = LeakageAssessment(
            design_name="again", gate_names=("g1",),
            t_values=np.array([2.0]), degrees_of_freedom=np.array([3.0]),
            threshold=4.5, n_traces=16, elapsed_seconds=0.0)
        assert store.put("a" * 64, assessment)
        assert store.get("a" * 64).design_name == "again"


class TestRootGc:
    def _completed_campaign(self, campaign_root, small_benchmark,
                            campaign_config):
        assessment = run_campaign(campaign_root, small_benchmark,
                                  campaign_config, n_shards=2, n_workers=1)
        outcome = submit_campaign(campaign_root, netlist=small_benchmark,
                                  config=campaign_config, n_shards=2)
        assert outcome.status == "cached"
        return outcome.spec_hash, assessment

    def test_gc_prunes_shards_of_stored_campaigns(self, campaign_root,
                                                  small_benchmark,
                                                  campaign_config):
        from repro.campaign import gc_campaign_root

        spec_hash, assessment = self._completed_campaign(
            campaign_root, small_benchmark, campaign_config)
        paths = CampaignPaths(campaign_root, spec_hash)
        assert paths.shards_dir.exists()
        outcome = gc_campaign_root(campaign_root, max_age=10 ** 9,
                                   prune_shards=True)
        assert outcome.pruned_shard_dirs == (spec_hash,)
        assert outcome.pruned_results == ()  # too young to evict
        assert not paths.shards_dir.exists()
        # The merged result still serves bit-identically from the store.
        _assert_assessments_equal(collect_result(campaign_root, spec_hash),
                                  assessment)

    def test_gc_evicted_campaign_recomputes_identically(self, campaign_root,
                                                        small_benchmark,
                                                        campaign_config):
        from repro.campaign import gc_campaign_root

        spec_hash, assessment = self._completed_campaign(
            campaign_root, small_benchmark, campaign_config)
        outcome = gc_campaign_root(campaign_root, prune_shards=True)
        assert outcome.pruned_results == (spec_hash,)
        # Re-running the identical campaign rebuilds the identical result.
        again = run_campaign(campaign_root, small_benchmark,
                             campaign_config, n_shards=2, n_workers=1)
        _assert_assessments_equal(again, assessment)

    def test_gc_dry_run_touches_nothing(self, campaign_root,
                                        small_benchmark, campaign_config):
        from repro.campaign import gc_campaign_root

        spec_hash, _ = self._completed_campaign(campaign_root,
                                                small_benchmark,
                                                campaign_config)
        paths = CampaignPaths(campaign_root, spec_hash)
        outcome = gc_campaign_root(campaign_root, prune_shards=True,
                                   dry_run=True)
        assert outcome.dry_run
        assert outcome.pruned_results == (spec_hash,)
        assert outcome.pruned_shard_dirs == (spec_hash,)
        assert paths.shards_dir.exists()
        assert collect_result(campaign_root, spec_hash) is not None

    def test_cli_gc(self, campaign_root, capsys, small_benchmark,
                    campaign_config):
        spec_hash, _ = self._completed_campaign(campaign_root,
                                                small_benchmark,
                                                campaign_config)
        capsys.readouterr()
        assert cli_main(["gc", "--root", str(campaign_root),
                         "--max-age-days", "30", "--shards",
                         "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would evict 0 result(s)" in out
        assert spec_hash[:12] in out  # the shards line
        assert cli_main(["gc", "--root", str(campaign_root), "--all"]) == 0
        assert "evicted 1 result(s)" in capsys.readouterr().out
        assert not campaign_status(campaign_root, spec_hash).complete
