"""Tests for the standard-cell library."""

import pytest

from repro.netlist import (
    CellLibrary,
    CellSpec,
    DEFAULT_LIBRARY,
    GateType,
    MASKABLE_TYPES,
    MASKED_REPLACEMENT,
)


class TestGateType:
    def test_ports_are_flagged(self):
        assert GateType.INPUT.is_port
        assert GateType.OUTPUT.is_port
        assert not GateType.AND.is_port

    def test_sequential_flag(self):
        assert GateType.DFF.is_sequential
        assert not GateType.NAND.is_sequential

    def test_masked_flag(self):
        assert GateType.MASKED_AND.is_masked
        assert GateType.MASKED_AND_DOM.is_masked
        assert not GateType.AND.is_masked

    def test_combinational_flag(self):
        assert GateType.XOR.is_combinational
        assert GateType.MASKED_OR.is_combinational
        assert not GateType.DFF.is_combinational
        assert not GateType.INPUT.is_combinational

    def test_every_maskable_type_has_replacement(self):
        for gate_type in MASKABLE_TYPES:
            assert gate_type in MASKED_REPLACEMENT
            assert MASKED_REPLACEMENT[gate_type].is_masked


class TestCellLibrary:
    def test_default_library_covers_all_types(self):
        assert len(DEFAULT_LIBRARY) == len(GateType)
        for gate_type in GateType:
            assert gate_type in DEFAULT_LIBRARY

    def test_missing_cell_raises(self):
        partial = [DEFAULT_LIBRARY[GateType.AND]]
        with pytest.raises(ValueError, match="missing specs"):
            CellLibrary(partial)

    def test_ports_have_zero_cost(self):
        assert DEFAULT_LIBRARY.area(GateType.INPUT) == 0.0
        assert DEFAULT_LIBRARY.leakage_power(GateType.INPUT) == 0.0

    def test_masked_cells_cost_more_than_primitives(self):
        assert (DEFAULT_LIBRARY.area(GateType.MASKED_AND)
                > DEFAULT_LIBRARY.area(GateType.AND))
        assert (DEFAULT_LIBRARY.delay(GateType.MASKED_OR)
                > DEFAULT_LIBRARY.delay(GateType.OR))
        assert (DEFAULT_LIBRARY.switching_energy(GateType.MASKED_AND_DOM)
                > DEFAULT_LIBRARY.switching_energy(GateType.MASKED_AND))

    def test_xor_costs_more_than_nand(self):
        assert (DEFAULT_LIBRARY.area(GateType.XOR)
                > DEFAULT_LIBRARY.area(GateType.NAND))

    def test_area_scales_with_fanin(self):
        base = DEFAULT_LIBRARY.area(GateType.AND, fanin=2)
        assert DEFAULT_LIBRARY.area(GateType.AND, fanin=4) > base
        assert DEFAULT_LIBRARY.area(GateType.AND, fanin=1) == base

    def test_delay_scales_logarithmically_with_fanin(self):
        two = DEFAULT_LIBRARY.delay(GateType.AND, fanin=2)
        four = DEFAULT_LIBRARY.delay(GateType.AND, fanin=4)
        assert four == pytest.approx(two * 2)

    def test_masked_equivalent_lookup(self):
        assert DEFAULT_LIBRARY.masked_equivalent(GateType.NAND) is GateType.MASKED_AND
        assert DEFAULT_LIBRARY.masked_equivalent(GateType.XNOR) is GateType.MASKED_XOR
        with pytest.raises(KeyError):
            DEFAULT_LIBRARY.masked_equivalent(GateType.NOT)

    def test_is_maskable(self):
        assert DEFAULT_LIBRARY.is_maskable(GateType.AND)
        assert not DEFAULT_LIBRARY.is_maskable(GateType.DFF)
        assert not DEFAULT_LIBRARY.is_maskable(GateType.BUF)

    def test_iteration_yields_cellspecs(self):
        specs = list(DEFAULT_LIBRARY)
        assert all(isinstance(spec, CellSpec) for spec in specs)
        assert len(specs) == len(DEFAULT_LIBRARY)
