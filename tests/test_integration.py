"""End-to-end integration tests of the POLARIS flow against VALIANT.

These tests exercise the full paper pipeline on deliberately tiny designs:
cognition generation on training designs, model fitting, XAI rule
extraction, protection of an unseen evaluation design, and comparison with
the VALIANT baseline.  They assert the qualitative *shape* of the paper's
results rather than absolute numbers.
"""

import pytest

from repro.baselines import ValiantConfig, valiant_protect
from repro.core import protect_design
from repro.simulation import functional_equivalent
from repro.tvla import assess_leakage
from repro.workloads import WorkloadConfig, evaluation_designs


@pytest.fixture(scope="module")
def unseen_design():
    return evaluation_designs(WorkloadConfig(scale=0.25, seed=31,
                                             designs=("voter",)))[0]


class TestEndToEnd:
    def test_polaris_reduces_leakage_on_unseen_design(self, trained_polaris,
                                                      unseen_design, tvla_config):
        before = assess_leakage(unseen_design, tvla_config)
        report = protect_design(unseen_design, trained_polaris,
                                mask_fraction=1.0, before=before)
        assert report.leakage_reduction_pct > 15.0
        assert report.after.mean_leakage < before.mean_leakage
        assert functional_equivalent(unseen_design, report.outcome.masked_netlist,
                                     n_vectors=128)

    def test_larger_mask_budget_gives_at_least_as_much_reduction(
            self, trained_polaris, unseen_design, tvla_config):
        before = assess_leakage(unseen_design, tvla_config)
        half = protect_design(unseen_design, trained_polaris, 0.5, before=before)
        full = protect_design(unseen_design, trained_polaris, 1.0, before=before)
        assert full.outcome.n_masked >= half.outcome.n_masked
        assert (full.leakage_reduction_pct
                >= half.leakage_reduction_pct - 5.0)  # allow TVLA noise

    def test_polaris_is_faster_than_valiant(self, trained_polaris, unseen_design,
                                            tvla_config):
        before = assess_leakage(unseen_design, tvla_config)
        report = protect_design(unseen_design, trained_polaris, 0.5, before=before)
        valiant = valiant_protect(unseen_design,
                                  ValiantConfig(tvla=tvla_config, max_iterations=4))
        assert report.polaris_seconds < valiant.runtime_seconds

    def test_polaris_overheads_below_valiant(self, trained_polaris, unseen_design,
                                             tvla_config):
        from repro.power import analyze_design
        before = assess_leakage(unseen_design, tvla_config)
        report = protect_design(unseen_design, trained_polaris, 0.5, before=before)
        valiant = valiant_protect(unseen_design,
                                  ValiantConfig(tvla=tvla_config, max_iterations=4))
        original = analyze_design(unseen_design)
        valiant_metrics = analyze_design(valiant.masked_netlist)
        assert report.masked_metrics.area < valiant_metrics.area
        assert report.masked_metrics.power < valiant_metrics.power

    def test_rule_extraction_produces_readable_rules(self, trained_polaris):
        rules = trained_polaris.extract_rules(max_samples=25)
        text = rules.describe()
        if len(rules) > 0:
            assert "As long as" in text
            assert ("Select & Replace" in text) or ("Do not Mask" in text)

    def test_waterfall_explanations_render(self, trained_polaris):
        explanations = trained_polaris.explain(max_samples=3)
        for explanation in explanations:
            rendered = explanation.waterfall(max_features=6).render()
            assert "E[f(x)]" in rendered
