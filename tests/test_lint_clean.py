"""Tier-1 gate: the repository lints clean under its own invariant checker.

This is the test-suite mirror of the CI ``static-analysis`` job: every
non-suppressed ``polaris-lint`` finding over the default surface (``src``,
``tools``, ``benchmarks``) fails the build, and every suppression that
*is* honoured carries a written justification (unjustified ones surface
as PL000 errors and fail here too).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

from polaris_lint import lint_paths  # noqa: E402
from polaris_lint import rules as _rules  # noqa: E402,F401  (registers rules)
from polaris_lint.cli import DEFAULT_PATHS  # noqa: E402


def test_repository_lints_clean():
    result = lint_paths(REPO_ROOT, DEFAULT_PATHS)
    assert result.clean, "polaris-lint findings:\n" + "\n".join(
        finding.render() for finding in result.findings)
    # The surface actually got linted (guards against a silent empty run).
    assert result.files_checked > 50
