"""Tests for netlist validation."""

from repro.netlist import GateType, Netlist, validate_netlist


class TestValidation:
    def test_valid_netlist_passes(self, tiny_netlist):
        report = validate_netlist(tiny_netlist)
        assert report.is_valid
        assert report.errors == []

    def test_missing_ports_flagged(self):
        netlist = Netlist("noports")
        report = validate_netlist(netlist)
        assert not report.is_valid
        assert any("primary inputs" in e for e in report.errors)
        assert any("primary outputs" in e for e in report.errors)

    def test_undriven_net_is_error(self):
        netlist = Netlist("undriven")
        netlist.add_primary_input("a")
        netlist.add_primary_output("y")
        netlist.add_gate("g", GateType.AND, ["a", "ghost"], "y")
        report = validate_netlist(netlist)
        assert not report.is_valid
        assert any("undriven" in e for e in report.errors)

    def test_dangling_net_is_warning_only(self):
        netlist = Netlist("dangling")
        netlist.add_primary_input("a")
        netlist.add_primary_output("y")
        netlist.add_gate("g1", GateType.NOT, ["a"], "y")
        netlist.add_gate("g2", GateType.NOT, ["a"], "unused")
        report = validate_netlist(netlist)
        assert report.is_valid
        assert any("dangling" in w for w in report.warnings)

    def test_combinational_loop_detected(self):
        netlist = Netlist("loop")
        netlist.add_primary_input("a")
        netlist.add_primary_output("y")
        netlist.add_gate("g1", GateType.AND, ["a", "n2"], "n1")
        netlist.add_gate("g2", GateType.OR, ["n1", "a"], "n2")
        netlist.add_gate("g3", GateType.NOT, ["n1"], "y")
        report = validate_netlist(netlist)
        assert not report.is_valid
        assert any("loop" in e for e in report.errors)

    def test_sequential_feedback_is_not_a_combinational_loop(self):
        netlist = Netlist("seq_loop")
        netlist.add_primary_input("a")
        netlist.add_primary_output("y")
        netlist.add_gate("g1", GateType.XOR, ["a", "q"], "d")
        netlist.add_gate("ff", GateType.DFF, ["d"], "q")
        netlist.add_gate("g2", GateType.BUF, ["q"], "y")
        report = validate_netlist(netlist)
        assert report.is_valid

    def test_duplicate_inputs_warn(self):
        netlist = Netlist("dupin")
        netlist.add_primary_input("a")
        netlist.add_primary_output("y")
        netlist.add_gate("g", GateType.AND, ["a", "a"], "y")
        report = validate_netlist(netlist)
        assert report.is_valid
        assert any("duplicated" in w for w in report.warnings)

    def test_unused_primary_input_warns(self):
        netlist = Netlist("unusedpi")
        netlist.add_primary_input("a")
        netlist.add_primary_input("b")
        netlist.add_primary_output("y")
        netlist.add_gate("g", GateType.NOT, ["a"], "y")
        report = validate_netlist(netlist)
        assert report.is_valid
        assert any("never read" in w for w in report.warnings)
