"""Tests for the synthetic circuit generators."""

import numpy as np
import pytest

from repro.netlist import (
    GateType,
    RandomLogicSpec,
    generate_array_multiplier,
    generate_mux_tree,
    generate_parity_tree,
    generate_random_logic,
    generate_ripple_adder,
    generate_sbox_logic,
    merge_netlists,
    validate_netlist,
)
from repro.simulation import simulate


def _single_vector(netlist, bits):
    """Build a one-row stimulus dict from a {net: bool} mapping."""
    return {net: np.array([bool(value)]) for net, value in bits.items()}


class TestRandomLogic:
    def test_gate_count_and_validity(self):
        spec = RandomLogicSpec(n_gates=80, n_inputs=12, n_outputs=6, seed=3)
        netlist = generate_random_logic(spec)
        assert len(netlist) == 80
        assert validate_netlist(netlist).is_valid

    def test_determinism(self):
        spec = RandomLogicSpec(n_gates=40, seed=9)
        first = generate_random_logic(spec)
        second = generate_random_logic(spec)
        assert [g.gate_type for g in first.gates] == [g.gate_type for g in second.gates]
        assert [g.inputs for g in first.gates] == [g.inputs for g in second.gates]

    def test_different_seeds_differ(self):
        a = generate_random_logic(RandomLogicSpec(n_gates=40, seed=1))
        b = generate_random_logic(RandomLogicSpec(n_gates=40, seed=2))
        assert [g.inputs for g in a.gates] != [g.inputs for g in b.gates]

    def test_register_fraction_creates_dffs(self):
        spec = RandomLogicSpec(n_gates=60, register_fraction=0.2, seed=5)
        netlist = generate_random_logic(spec)
        assert len(netlist.sequential_gates()) > 0
        assert validate_netlist(netlist).is_valid

    def test_profile_affects_type_mix(self):
        crypto = generate_random_logic(
            RandomLogicSpec(n_gates=300, profile="crypto", seed=1))
        control = generate_random_logic(
            RandomLogicSpec(n_gates=300, profile="control", seed=1))
        crypto_xor = crypto.gate_type_counts().get(GateType.XOR, 0)
        control_xor = control.gate_type_counts().get(GateType.XOR, 0)
        assert crypto_xor > control_xor

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            generate_random_logic(RandomLogicSpec(n_gates=0))
        with pytest.raises(ValueError):
            generate_random_logic(RandomLogicSpec(n_gates=10, n_inputs=1))
        with pytest.raises(ValueError):
            generate_random_logic(RandomLogicSpec(n_gates=10, profile="bogus"))


class TestRippleAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (7, 9), (15, 15), (6, 11)])
    def test_addition_is_correct(self, a, b):
        width = 4
        netlist = generate_ripple_adder(width)
        bits = {}
        for i in range(width):
            bits[f"a_{i}"] = (a >> i) & 1
            bits[f"b_{i}"] = (b >> i) & 1
        result = simulate(netlist, _single_vector(netlist, bits))
        outputs = netlist.primary_outputs
        value = 0
        for position, net in enumerate(outputs):
            value |= int(result.net_values[net][0]) << position
        assert value == a + b

    def test_structure_valid(self):
        assert validate_netlist(generate_ripple_adder(8)).is_valid


class TestArrayMultiplier:
    @pytest.mark.parametrize("a,b", [(0, 5), (3, 3), (7, 6), (15, 13), (9, 11)])
    def test_multiplication_is_correct(self, a, b):
        width = 4
        netlist = generate_array_multiplier(width)
        bits = {}
        for i in range(width):
            bits[f"a_{i}"] = (a >> i) & 1
            bits[f"b_{i}"] = (b >> i) & 1
        result = simulate(netlist, _single_vector(netlist, bits))
        value = 0
        for position, net in enumerate(netlist.primary_outputs):
            value |= int(result.net_values[net][0]) << position
        assert value == a * b

    def test_structure_valid(self):
        assert validate_netlist(generate_array_multiplier(6)).is_valid


class TestParityAndMux:
    def test_parity_tree_computes_parity(self, rng):
        width = 9
        netlist = generate_parity_tree(width)
        vector = rng.integers(0, 2, size=width)
        bits = {f"in_{i}": int(vector[i]) for i in range(width)}
        result = simulate(netlist, _single_vector(netlist, bits))
        out = netlist.primary_outputs[0]
        assert int(result.net_values[out][0]) == int(vector.sum() % 2)

    def test_mux_tree_selects_correct_input(self, rng):
        select_bits = 3
        netlist = generate_mux_tree(select_bits)
        data = rng.integers(0, 2, size=2 ** select_bits)
        select = 5
        bits = {f"d_{i}": int(data[i]) for i in range(2 ** select_bits)}
        for i in range(select_bits):
            bits[f"s_{i}"] = (select >> i) & 1
        result = simulate(netlist, _single_vector(netlist, bits))
        out = netlist.primary_outputs[0]
        assert int(result.net_values[out][0]) == int(data[select])


class TestSboxAndMerge:
    def test_sbox_valid_and_nonconstant(self, rng):
        netlist = generate_sbox_logic(6, 4, seed=2)
        assert validate_netlist(netlist).is_valid
        matrix = rng.integers(0, 2, size=(32, 6)).astype(bool)
        stimulus = {f"x_{i}": matrix[:, i] for i in range(6)}
        result = simulate(netlist, stimulus)
        for net in netlist.primary_outputs:
            values = result.net_values[net]
            assert 0 < values.sum() < len(values)  # not stuck at 0 or 1

    def test_merge_netlists_connects_parts(self):
        parts = [generate_parity_tree(4, name="p0"),
                 generate_ripple_adder(3, name="add")]
        merged = merge_netlists("merged", parts, stitch_seed=1)
        assert validate_netlist(merged).is_valid
        assert len(merged) >= sum(len(p) for p in parts)
        assert len(merged.primary_inputs) == sum(len(p.primary_inputs) for p in parts)
