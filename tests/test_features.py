"""Tests for gate-type encoding, structural features, and datasets."""

import numpy as np
import pytest

from repro.features import Dataset, GateTypeEncoder, StructuralFeatureExtractor
from repro.netlist import GateType


class TestGateTypeEncoder:
    def test_one_hot_round_trip(self):
        encoder = GateTypeEncoder()
        for gate_type in encoder.vocabulary:
            vector = encoder.encode(gate_type)
            assert vector.sum() == 1.0
            assert encoder.decode(vector) is gate_type

    def test_unknown_and_none_encode_to_zeros(self):
        encoder = GateTypeEncoder()
        assert encoder.encode(None).sum() == 0.0
        assert encoder.encode(GateType.MASKED_AND).sum() == 0.0
        assert encoder.decode(np.zeros(encoder.size)) is None

    def test_feature_names_format(self):
        encoder = GateTypeEncoder()
        names = encoder.feature_names("G3")
        assert f"G3={GateType.NAND.value}" in names
        assert len(names) == encoder.size

    def test_decode_shape_check(self):
        encoder = GateTypeEncoder()
        with pytest.raises(ValueError):
            encoder.decode(np.zeros(3))

    def test_index_of(self):
        encoder = GateTypeEncoder()
        assert encoder.vocabulary[encoder.index_of(GateType.XOR)] is GateType.XOR


class TestStructuralFeatures:
    def test_vector_length_matches_names(self, tiny_netlist):
        extractor = StructuralFeatureExtractor(tiny_netlist, locality=3)
        vector = extractor.extract("g_xor")
        assert vector.shape == (extractor.n_features,)
        assert len(extractor.feature_names) == extractor.n_features

    def test_self_type_one_hot_set(self, tiny_netlist):
        extractor = StructuralFeatureExtractor(tiny_netlist, locality=3)
        vector = extractor.extract("g_nand")
        names = extractor.feature_names
        assert vector[names.index("G0=NAND")] == 1.0
        assert vector[names.index("G0=AND")] == 0.0

    def test_driver_slots_capture_fanin_types(self, tiny_netlist):
        extractor = StructuralFeatureExtractor(tiny_netlist, locality=3)
        vector = extractor.extract("g_xor")  # driven by g_and and g_or
        names = extractor.feature_names
        driver_types = {
            name.split("=")[1]
            for name in names
            if name.startswith(("D0=", "D1=")) and vector[names.index(name)] == 1.0
        }
        assert driver_types == {"AND", "OR"}

    def test_scalar_features_ranges(self, random_netlist):
        extractor = StructuralFeatureExtractor(random_netlist, locality=5)
        names = extractor.feature_names
        _, matrix = extractor.extract_all()
        depth = matrix[:, names.index("depth_ratio")]
        assert (depth >= 0).all() and (depth <= 1.0).all()
        xor_fraction = matrix[:, names.index("neighborhood_xor_fraction")]
        assert (xor_fraction >= 0).all() and (xor_fraction <= 1.0).all()

    def test_unknown_gate_raises(self, tiny_netlist):
        extractor = StructuralFeatureExtractor(tiny_netlist, locality=3)
        with pytest.raises(KeyError):
            extractor.extract("ghost")

    def test_extract_all_maskable_only(self, tiny_netlist):
        extractor = StructuralFeatureExtractor(tiny_netlist, locality=3)
        names, matrix = extractor.extract_all(maskable_only=True)
        assert set(names) == {"g_and", "g_or", "g_xor", "g_nand"}
        assert matrix.shape == (4, extractor.n_features)

    def test_locality_changes_vector_length(self, tiny_netlist):
        small = StructuralFeatureExtractor(tiny_netlist, locality=2)
        large = StructuralFeatureExtractor(tiny_netlist, locality=6)
        assert large.n_features > small.n_features

    def test_invalid_locality_rejected(self, tiny_netlist):
        with pytest.raises(ValueError):
            StructuralFeatureExtractor(tiny_netlist, locality=0)

    def test_feature_columns_stable_across_designs(self, tiny_netlist,
                                                   random_netlist):
        encoder = GateTypeEncoder()
        first = StructuralFeatureExtractor(tiny_netlist, locality=4, encoder=encoder)
        second = StructuralFeatureExtractor(random_netlist, locality=4,
                                            encoder=encoder)
        assert first.feature_names == second.feature_names


class TestDataset:
    def _dataset(self, n=20, d=4, seed=0):
        rng = np.random.default_rng(seed)
        return Dataset(rng.normal(size=(n, d)), rng.integers(0, 2, n),
                       [f"f{i}" for i in range(d)])

    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4), ["a", "b"])
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(3), ["a"])
        with pytest.raises(ValueError):
            Dataset(np.zeros(3), np.zeros(3), ["a"])

    def test_class_counts_and_positive_fraction(self):
        dataset = Dataset(np.zeros((4, 1)), np.array([0, 1, 1, 1]), ["f"])
        assert dataset.class_counts() == {0: 1, 1: 3}
        assert dataset.positive_fraction() == pytest.approx(0.75)

    def test_append_and_subset(self):
        a = self._dataset(10, seed=1)
        b = self._dataset(5, seed=2)
        combined = a.append(b)
        assert combined.n_samples == 15
        subset = combined.subset([0, 1, 2])
        assert subset.n_samples == 3
        mismatched = Dataset(np.zeros((2, 4)), np.zeros(2),
                             [f"g{i}" for i in range(4)])
        with pytest.raises(ValueError):
            a.append(mismatched)

    def test_train_test_split(self):
        dataset = self._dataset(50)
        train, test = dataset.train_test_split(0.2, seed=3)
        assert train.n_samples + test.n_samples == 50
        assert test.n_samples == 10
        with pytest.raises(ValueError):
            dataset.train_test_split(1.5)

    def test_save_and_load_round_trip(self, tmp_path):
        dataset = self._dataset(12)
        path = dataset.save(tmp_path / "data.npz")
        loaded = Dataset.load(path)
        np.testing.assert_allclose(loaded.features, dataset.features)
        np.testing.assert_array_equal(loaded.labels, dataset.labels)
        assert loaded.feature_names == dataset.feature_names

    def test_from_rows_empty_and_filled(self):
        empty = Dataset.from_rows([], ["a", "b"])
        assert empty.n_samples == 0
        filled = Dataset.from_rows([(np.array([1.0, 2.0]), 1),
                                    (np.array([3.0, 4.0]), 0)], ["a", "b"])
        assert filled.n_samples == 2
        assert filled.labels.tolist() == [1, 0]
