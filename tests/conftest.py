"""Shared fixtures for the test-suite.

All fixtures use deliberately small designs and trace counts so the full
suite runs in a couple of minutes; the benchmark harness (``benchmarks/``)
is where paper-scale settings live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ModelConfig, PolarisConfig, train_polaris
from repro.netlist import (
    GateType,
    Netlist,
    RandomLogicSpec,
    generate_random_logic,
    load_benchmark,
)
from repro.power import PowerModelConfig
from repro.tvla import TvlaConfig
from repro.workloads import WorkloadConfig, training_designs


#: TVLA settings small enough for unit tests but still statistically usable
#: (240 traces keeps leakage-reduction margins stable across noise-stream
#: derivations while the whole suite stays fast).
TEST_TVLA = TvlaConfig(n_traces=240, n_fixed_classes=2, seed=5,
                       power=PowerModelConfig())


@pytest.fixture
def tiny_netlist() -> Netlist:
    """A hand-built 5-gate combinational netlist with known structure."""
    netlist = Netlist("tiny")
    for net in ("a", "b", "c", "d"):
        netlist.add_primary_input(net)
    netlist.add_gate("g_and", GateType.AND, ["a", "b"], "n1")
    netlist.add_gate("g_or", GateType.OR, ["c", "d"], "n2")
    netlist.add_gate("g_xor", GateType.XOR, ["n1", "n2"], "n3")
    netlist.add_gate("g_nand", GateType.NAND, ["n1", "n3"], "n4")
    netlist.add_gate("g_not", GateType.NOT, ["n4"], "y")
    netlist.add_primary_output("y")
    netlist.add_primary_output("n3")
    return netlist


@pytest.fixture
def sequential_netlist() -> Netlist:
    """A small sequential netlist with one flip-flop in a feedback-free path."""
    netlist = Netlist("tiny_seq")
    for net in ("a", "b"):
        netlist.add_primary_input(net)
    netlist.add_gate("g_xor", GateType.XOR, ["a", "b"], "n1")
    netlist.add_gate("ff", GateType.DFF, ["n1"], "q")
    netlist.add_gate("g_and", GateType.AND, ["q", "a"], "y")
    netlist.add_primary_output("y")
    return netlist


@pytest.fixture
def random_netlist() -> Netlist:
    """A seeded 60-gate random netlist (fresh copy per test)."""
    spec = RandomLogicSpec(n_gates=60, n_inputs=10, n_outputs=5, seed=17)
    return generate_random_logic(spec, "random60")


@pytest.fixture(scope="session")
def small_benchmark() -> Netlist:
    """A small instance of the des3 evaluation benchmark."""
    return load_benchmark("des3", scale=0.25, seed=99)


@pytest.fixture(scope="session")
def tvla_config() -> TvlaConfig:
    """Shared small TVLA configuration."""
    return TEST_TVLA


@pytest.fixture(scope="session")
def polaris_config() -> PolarisConfig:
    """A scaled-down POLARIS configuration usable in unit tests."""
    return PolarisConfig(
        msize=15,
        locality=4,
        iterations=2,
        theta_r=0.7,
        tvla=TEST_TVLA,
        model=ModelConfig(model_type="adaboost", learning_rate=0.2,
                          n_estimators=25, max_depth=2),
        seed=3,
    )


@pytest.fixture(scope="session")
def trained_polaris(polaris_config):
    """A POLARIS instance trained once per test session on tiny designs."""
    designs = training_designs(WorkloadConfig(scale=0.3, seed=4,
                                              designs=("c432", "c499")))
    return train_polaris(designs, polaris_config)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(1234)
