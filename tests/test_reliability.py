"""Tests for the fault-injection framework (`repro.reliability`).

The contracts pinned here:

* a :class:`FaultPlan` is **deterministic**: whether the *k*-th
  evaluation of a site fires is a pure Philox function of
  ``(seed, site, k)`` — two plan instances replay identical faults;
* the shared :class:`RetryPolicy` backs off deterministically and keeps
  its best-effort / reraise semantics straight;
* atomic publication fsyncs the data *and* the directory entry, and a
  fault-injected torn write is detected, quarantined and requeued —
  the healed campaign is **bitwise equal** to an uninjected one, under
  both samplers;
* ``collect_result(allow_partial=True)`` degrades a poisoned campaign
  to the surviving shards (never stored) instead of raising;
* transient queue faults at claim/ack are absorbed by the worker loop
  and the outcome retry policy;
* a follow stream survives a server restart mid-campaign
  (reconnect + re-subscribe + dedupe) and a chaos plan spanning four
  fault domains — worker kill, checkpoint corruption, queue errors, a
  severed watch connection — still converges bitwise to the clean run.
"""

from __future__ import annotations

import asyncio
import os
import stat
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import (
    CampaignError,
    CampaignPaths,
    TaskQueue,
    campaign_queue,
    campaign_status,
    collect_result,
    run_campaign,
    run_worker,
    submit_campaign,
)
from repro.campaign.cli import main as cli_main
from repro.campaign.runner import campaign_store, verified_checkpoint
from repro.campaign.serialize import decode_array
from repro.campaign.spec import CampaignSpec
from repro.netlist.benchmarks import load_benchmark
from repro.reliability import (
    CheckpointCorruptError,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    active_plan,
    atomic_write_bytes,
    checkpoint_ok,
    load_checkpoint,
    publish_exclusive,
    quarantine_checkpoint,
    seal_checkpoint,
    set_fault_plan,
    unseal_checkpoint,
)
from repro.service import (
    AssessmentService,
    CampaignComplete,
    CampaignProgress,
    ServiceClient,
    ServiceError,
    run_service_worker,
    tenant_key_prefix,
    tenant_root,
)
from repro.tvla import TvlaConfig

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

#: 240 traces in 48-trace chunks -> 5 chunks; 3 shards split 2/2/1.
RELIABILITY_TVLA = dict(n_traces=240, n_fixed_classes=2, seed=7,
                        chunk_traces=48, streaming=True)


@pytest.fixture(autouse=True)
def _clear_fault_plan():
    """Every test leaves the process with no fault-plan override."""
    yield
    set_fault_plan(None)


def _config(sampler: str = "counter") -> TvlaConfig:
    return TvlaConfig(sampler=sampler, **RELIABILITY_TVLA)


def _assert_bitwise_equal(left, right):
    assert np.array_equal(left.t_values, right.t_values)
    assert np.array_equal(left.degrees_of_freedom,
                          right.degrees_of_freedom)
    for order, values in left.order_t_values.items():
        assert np.array_equal(values, right.order_t_values[order])


# ----------------------------------------------------------------------
# FaultPlan grammar
# ----------------------------------------------------------------------
class TestFaultPlanGrammar:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "seed=42;checkpoint.write:mode=corrupt,max=1;"
            "queue.ack:mode=error,p=0.5;"
            "worker.shard:mode=delay,delay=0.25,after=2")
        assert plan.seed == 42
        assert [r.site for r in plan.rules] == [
            "checkpoint.write", "queue.ack", "worker.shard"]
        assert plan.rules[0].mode == "corrupt"
        assert plan.rules[0].max_count == 1
        assert plan.rules[1].p == 0.5
        assert plan.rules[2].delay == 0.25
        assert plan.rules[2].after == 2

    def test_round_trip_through_text(self):
        text = ("seed=9;checkpoint.write:mode=truncate,max=2;"
                "service.send:mode=drop,p=0.25,after=1")
        plan = FaultPlan.parse(text)
        again = FaultPlan.parse(plan.to_text())
        assert again.seed == plan.seed
        assert again.rules == plan.rules

    def test_empty_and_whitespace_tokens_are_ignored(self):
        plan = FaultPlan.parse(";; seed=3 ;queue.claim:mode=error; ")
        assert plan.seed == 3
        assert len(plan.rules) == 1

    def test_unknown_site_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.parse("nope.where:mode=error")

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultPlan.parse("queue.ack:mode=explode")

    def test_missing_mode_is_rejected(self):
        with pytest.raises(ValueError, match="missing 'mode='"):
            FaultPlan.parse("queue.ack:p=0.5")

    def test_malformed_rule_is_rejected(self):
        with pytest.raises(ValueError, match="malformed fault rule"):
            FaultPlan.parse("just-a-word")
        with pytest.raises(ValueError, match="unknown option"):
            FaultPlan.parse("queue.ack:mode=error,bogus=1")

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="queue.ack", mode="error", p=1.5)
        with pytest.raises(ValueError, match="max fire count"):
            FaultRule(site="queue.ack", mode="error", max_count=-1)
        with pytest.raises(ValueError, match="delay"):
            FaultRule(site="worker.shard", mode="delay", delay=-1.0)


# ----------------------------------------------------------------------
# FaultPlan determinism
# ----------------------------------------------------------------------
class TestFaultPlanDeterminism:
    def test_probabilistic_rule_replays_identically(self):
        text = "seed=11;queue.ack:mode=error,p=0.5"
        plan_a, plan_b = FaultPlan.parse(text), FaultPlan.parse(text)
        seq_a = [plan_a.evaluate("queue.ack") is not None
                 for _ in range(64)]
        seq_b = [plan_b.evaluate("queue.ack") is not None
                 for _ in range(64)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)  # p=0.5 really is partial

    def test_different_seeds_draw_different_streams(self):
        seq = {}
        for seed in (1, 2):
            plan = FaultPlan.parse(f"seed={seed};queue.ack:mode=error,p=0.5")
            seq[seed] = tuple(plan.evaluate("queue.ack") is not None
                              for _ in range(64))
        assert seq[1] != seq[2]

    def test_max_count_bounds_total_fires(self):
        plan = FaultPlan.parse("checkpoint.write:mode=corrupt,max=2")
        fired = [plan.evaluate("checkpoint.write") is not None
                 for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_after_skips_leading_evaluations(self):
        plan = FaultPlan.parse("queue.claim:mode=error,after=2")
        fired = [plan.evaluate("queue.claim") is not None
                 for _ in range(4)]
        assert fired == [False, False, True, True]

    def test_first_matching_rule_wins(self):
        plan = FaultPlan.parse(
            "checkpoint.write:mode=truncate,max=1;"
            "checkpoint.write:mode=corrupt")
        assert plan.evaluate("checkpoint.write").mode == "truncate"
        assert plan.evaluate("checkpoint.write").mode == "corrupt"

    def test_sites_keep_independent_counters(self):
        plan = FaultPlan.parse(
            "queue.ack:mode=error,max=1;queue.claim:mode=error,max=1")
        for _ in range(3):
            plan.evaluate("queue.ack")
        # queue.claim's own counter is untouched: its rule still fires.
        assert plan.evaluate("queue.claim") is not None


# ----------------------------------------------------------------------
# Environment activation (and the legacy delay knob)
# ----------------------------------------------------------------------
class TestEnvActivation:
    def test_no_env_no_plan(self, monkeypatch):
        monkeypatch.delenv("POLARIS_FAULT_PLAN", raising=False)
        monkeypatch.delenv("POLARIS_SHARD_DELAY", raising=False)
        assert active_plan() is None

    def test_env_plan_is_parsed_and_cached(self, monkeypatch):
        monkeypatch.setenv("POLARIS_FAULT_PLAN",
                           "seed=5;queue.ack:mode=error,max=1")
        plan = active_plan()
        assert plan.seed == 5
        # Same env -> same instance, so fire counters persist.
        assert active_plan() is plan
        assert plan.evaluate("queue.ack") is not None
        assert active_plan().evaluate("queue.ack") is None  # max spent

    def test_legacy_shard_delay_becomes_a_plan_rule(self, monkeypatch):
        monkeypatch.delenv("POLARIS_FAULT_PLAN", raising=False)
        monkeypatch.setenv("POLARIS_SHARD_DELAY", "0.125")
        plan = active_plan()
        (rule,) = plan.rules
        assert rule.site == "worker.shard"
        assert rule.mode == "delay"
        assert rule.delay == pytest.approx(0.125)

    def test_legacy_delay_appends_to_an_env_plan(self, monkeypatch):
        monkeypatch.setenv("POLARIS_FAULT_PLAN",
                           "seed=2;queue.ack:mode=error")
        monkeypatch.setenv("POLARIS_SHARD_DELAY", "0.25")
        plan = active_plan()
        assert plan.seed == 2
        assert [r.site for r in plan.rules] == ["queue.ack", "worker.shard"]

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("POLARIS_FAULT_PLAN", "queue.ack:mode=error")
        override = FaultPlan.parse("queue.claim:mode=error")
        set_fault_plan(override)
        assert active_plan() is override
        set_fault_plan(None)
        assert active_plan().rules[0].site == "queue.ack"

    def test_unparsable_legacy_delay_is_ignored(self, monkeypatch):
        monkeypatch.delenv("POLARIS_FAULT_PLAN", raising=False)
        monkeypatch.setenv("POLARIS_SHARD_DELAY", "not-a-number")
        assert active_plan() is None

    def test_bad_cli_fault_plan_is_a_usage_error(self, tmp_path, capsys):
        code = cli_main(["work", "--root", str(tmp_path),
                        "--fault-plan", "bogus:mode=explode"])
        assert code == 2
        assert "bad --fault-plan" in capsys.readouterr().err


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=0.8,
                             multiplier=2.0, jitter=0.25, seed=3)
        again = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=0.8,
                            multiplier=2.0, jitter=0.25, seed=3)
        for attempt in range(6):
            delay = policy.delay(attempt)
            base = min(0.1 * 2.0 ** attempt, 0.8)
            assert base <= delay <= base * 1.25
            assert delay == again.delay(attempt)

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.05, max_delay=1.0, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.2)

    def test_call_retries_until_success(self):
        attempts = []
        sleeps = []

        def flaky():
            attempts.append(len(attempts))
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.0)
        assert policy.call(flaky, retry_on=OSError,
                           sleep=sleeps.append) == "ok"
        assert len(attempts) == 3
        assert sleeps == [policy.delay(0), policy.delay(1)]

    def test_exhausted_retries_reraise_the_last_error(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        calls = []
        with pytest.raises(OSError, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(OSError("always")),
                        retry_on=OSError, sleep=calls.append)
        assert len(calls) == 2  # no sleep after the final attempt

    def test_reraise_false_swallows_and_returns_none(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        seen = []

        def doomed():
            raise OSError("nope")

        result = policy.call(doomed, retry_on=OSError, reraise=False,
                             sleep=lambda _: None,
                             on_retry=lambda k, e: seen.append(k))
        assert result is None
        assert seen == [0, 1]  # on_retry fires for the final attempt too

    def test_unlisted_exceptions_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        calls = []

        def wrong():
            calls.append(True)
            raise TypeError("not transient")

        with pytest.raises(TypeError):
            policy.call(wrong, retry_on=OSError)
        assert len(calls) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


# ----------------------------------------------------------------------
# Atomic publication
# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_write_publishes_and_fsyncs_file_and_directory(self, tmp_path,
                                                           monkeypatch):
        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        target = tmp_path / "deep" / "nested" / "blob.bin"
        atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        # At least one file fsync (before the rename) and one directory
        # fsync (after it) — the part ad-hoc implementations forget.
        assert False in synced and True in synced
        assert synced.index(False) < synced.index(True)
        # No temp droppings left behind.
        assert [p.name for p in target.parent.iterdir()] == ["blob.bin"]

    def test_overwrite_replaces_content(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"

    def test_publish_exclusive_first_writer_wins(self, tmp_path):
        target = tmp_path / "store" / "object.json"
        assert publish_exclusive(target, b"first") is True
        assert publish_exclusive(target, b"second") is False
        assert target.read_bytes() == b"first"
        assert [p.name for p in target.parent.iterdir()] == ["object.json"]

    def test_fault_injected_truncation_is_detectable(self, tmp_path):
        # A torn write through the checkpoint.write site: the sealed file
        # loses its trailer and fails verification at read time.
        set_fault_plan(FaultPlan.parse(
            "checkpoint.write:mode=truncate,max=1"))
        payload = b"not-a-shard-payload " * 8
        target = tmp_path / "shard_0000.moments"
        atomic_write_bytes(target, seal_checkpoint(payload),
                           fault_site="checkpoint.write")
        assert len(target.read_bytes()) < len(seal_checkpoint(payload))
        assert not checkpoint_ok(target)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(target)
        # The fault budget is spent: the rewrite lands intact.
        atomic_write_bytes(target, seal_checkpoint(payload),
                           fault_site="checkpoint.write")
        assert load_checkpoint(target) == payload

    def test_fault_injected_write_error_leaves_no_file(self, tmp_path):
        set_fault_plan(FaultPlan.parse("store.write:mode=error,max=1"))
        target = tmp_path / "object.json"
        with pytest.raises(OSError, match="injected fault"):
            atomic_write_bytes(target, b"data", fault_site="store.write")
        assert not target.exists()


# ----------------------------------------------------------------------
# Checkpoint sealing / quarantine
# ----------------------------------------------------------------------
class TestCheckpointSeal:
    def test_seal_unseal_round_trip(self):
        payload = b"SHM2" + bytes(range(64))
        assert unseal_checkpoint(seal_checkpoint(payload)) == payload

    def test_tampered_byte_is_detected(self):
        sealed = bytearray(seal_checkpoint(b"SHM1" + bytes(100)))
        sealed[10] ^= 0xFF
        with pytest.raises(CheckpointCorruptError, match="digest"):
            unseal_checkpoint(bytes(sealed))

    def test_legacy_unsealed_payloads_still_load(self):
        for magic in (b"SHM1", b"SHM2"):
            payload = magic + bytes(32)
            assert unseal_checkpoint(payload) == payload

    def test_foreign_bytes_are_rejected(self):
        with pytest.raises(CheckpointCorruptError, match="neither"):
            unseal_checkpoint(b"random junk that is not a checkpoint")

    def test_quarantine_renames_and_never_clobbers(self, tmp_path):
        path = tmp_path / "shard_0001.moments"
        path.write_bytes(b"bad one")
        first = quarantine_checkpoint(path)
        assert first.name == "shard_0001.moments.corrupt"
        assert first.read_bytes() == b"bad one"
        assert not path.exists()
        path.write_bytes(b"bad two")
        second = quarantine_checkpoint(path)
        assert second.name == "shard_0001.moments.corrupt1"
        assert first.read_bytes() == b"bad one"  # post-mortem preserved


# ----------------------------------------------------------------------
# Campaign-level hardening
# ----------------------------------------------------------------------
class TestCampaignHardening:
    @pytest.mark.parametrize("sampler", ["counter", "sequence"])
    def test_corrupt_checkpoint_quarantined_requeued_bitwise(
            self, small_benchmark, tmp_path, sampler):
        """The tentpole scenario: a seeded plan corrupts one checkpoint
        mid-campaign; collection quarantines it, requeues the shard, and
        the healed result is bitwise equal to an uninjected campaign."""
        config = _config(sampler)
        root = tmp_path / "faulted"
        set_fault_plan(FaultPlan.parse(
            "seed=42;checkpoint.write:mode=corrupt,max=1"))
        outcome = submit_campaign(root, netlist=small_benchmark,
                                  config=config, n_shards=3)
        queue = campaign_queue(root)
        run_worker(queue, drain=True)
        paths = CampaignPaths(root, outcome.spec_hash)
        shards_dir = paths.shard_path(0).parent
        # All three checkpoints exist, but one is silently corrupt.
        assert sorted(p.name for p in shards_dir.iterdir()) == [
            "shard_0000.moments", "shard_0001.moments",
            "shard_0002.moments"]
        # Collection detects it: quarantine + requeue, then wait for the
        # recompute (which never comes yet) until the timeout trips.
        with pytest.raises(TimeoutError):
            collect_result(root, outcome.spec_hash, timeout=0.6)
        corrupt = [p.name for p in shards_dir.iterdir()
                   if ".corrupt" in p.name]
        assert len(corrupt) == 1
        assert queue.counts()["pending"] == 1  # the requeued shard
        # A worker heals it (the plan's fault budget is already spent).
        run_worker(queue, drain=True)
        healed = collect_result(root, outcome.spec_hash, timeout=60)
        clean = run_campaign(tmp_path / "clean", small_benchmark, config,
                             n_shards=3, n_workers=1)
        _assert_bitwise_equal(healed, clean)

    def test_skip_path_quarantines_and_recomputes(self, small_benchmark,
                                                  tmp_path):
        # A corrupt checkpoint is also healed when the *worker* trips over
        # it on redelivery (the skip-path check).
        config = _config()
        root = tmp_path / "runs"
        outcome = submit_campaign(root, netlist=small_benchmark,
                                  config=config, n_shards=3)
        queue = campaign_queue(root)
        run_worker(queue, drain=True)
        paths = CampaignPaths(root, outcome.spec_hash)
        shard_path = paths.shard_path(1)
        good = shard_path.read_bytes()
        shard_path.write_bytes(good[:len(good) // 3])  # torn write
        # Redeliver the shard: the worker quarantines and recomputes.
        from repro.campaign.runner import run_shard_task
        import pickle
        task = pickle.dumps(
            (run_shard_task, (str(root), outcome.spec_hash, 1), {}),
            protocol=pickle.HIGHEST_PROTOCOL)
        queue.put(task, key=paths.shard_key(1), requeue_done=True)
        run_worker(queue, drain=True)
        assert shard_path.read_bytes() == good  # bitwise republish
        assert (shard_path.parent / "shard_0001.moments.corrupt").exists()

    def test_allow_partial_degrades_instead_of_raising(
            self, small_benchmark, tmp_path):
        config = _config()
        root = tmp_path / "poisoned"
        # Shard 0's three attempts all fail (single worker claims in id
        # order: the same task is retried until its budget is spent);
        # shard 1 then completes normally.
        set_fault_plan(FaultPlan.parse("worker.shard:mode=error,max=3"))
        outcome = submit_campaign(root, netlist=small_benchmark,
                                  config=config, n_shards=2)
        queue = campaign_queue(root)
        run_worker(queue, drain=True)
        status = campaign_status(root, outcome.spec_hash, queue=queue)
        assert status.failed_shards == (0,)
        assert status.n_shards_done == 1
        with pytest.raises(CampaignError, match="exhausted its retries"):
            collect_result(root, outcome.spec_hash, timeout=5)
        degraded = collect_result(root, outcome.spec_hash, timeout=5,
                                  allow_partial=True)
        assert degraded.failed_shards == (0,)
        assert degraded.n_traces == config.n_traces
        # Degraded results are never cached in the store.
        assert campaign_store(root).get(outcome.spec_hash) is None

    def test_allow_partial_with_no_survivors_still_raises(
            self, small_benchmark, tmp_path):
        config = _config()
        root = tmp_path / "hopeless"
        set_fault_plan(FaultPlan.parse("worker.shard:mode=error"))
        outcome = submit_campaign(root, netlist=small_benchmark,
                                  config=config, n_shards=2)
        run_worker(campaign_queue(root), drain=True)
        with pytest.raises(CampaignError):
            collect_result(root, outcome.spec_hash, timeout=5,
                           allow_partial=True)

    def test_transient_queue_faults_are_absorbed(self, small_benchmark,
                                                 tmp_path):
        # claim errors bounce off the worker loop; ack errors are retried
        # by the shared outcome policy — the campaign still completes.
        config = _config()
        root = tmp_path / "contended"
        set_fault_plan(FaultPlan.parse(
            "seed=3;queue.claim:mode=error,max=2;queue.ack:mode=error,max=2"))
        outcome = submit_campaign(root, netlist=small_benchmark,
                                  config=config, n_shards=3)
        run_worker(campaign_queue(root), drain=True, poll_interval=0.01)
        result = collect_result(root, outcome.spec_hash, timeout=60)
        clean = run_campaign(tmp_path / "clean", small_benchmark, config,
                             n_shards=3, n_workers=1)
        _assert_bitwise_equal(result, clean)

    def test_verified_checkpoint_requeues_through_given_queue(
            self, small_benchmark, tmp_path):
        config = _config()
        root = tmp_path / "runs"
        outcome = submit_campaign(root, netlist=small_benchmark,
                                  config=config, n_shards=2)
        queue = campaign_queue(root)
        run_worker(queue, drain=True)
        paths = CampaignPaths(root, outcome.spec_hash)
        paths.shard_path(0).write_bytes(b"garbage")
        assert verified_checkpoint(paths, 0, queue=queue) is None
        assert queue.counts()["pending"] == 1
        assert verified_checkpoint(paths, 1) is not None


# ----------------------------------------------------------------------
# Service-stack reliability (restart survival + multi-domain chaos)
# ----------------------------------------------------------------------
class _ServiceHandle:
    """A restartable AssessmentService on a background event loop."""

    def __init__(self, root: Path, port: int = 0) -> None:
        self.root = root
        self.port = port
        self.server = None
        self._thread = None
        self._loop = None
        self._stop = None

    def start(self) -> "_ServiceHandle":
        started = threading.Event()
        holder = {}

        def run():
            async def main():
                server = AssessmentService(self.root, port=self.port,
                                           monitor_interval=0.1,
                                           flatline_after=0.5)
                await server.start()
                holder["server"] = server
                holder["stop"] = asyncio.Event()
                started.set()
                await holder["stop"].wait()
                await server.stop()
            loop = asyncio.new_event_loop()
            holder["loop"] = loop
            try:
                loop.run_until_complete(main())
            finally:
                loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert started.wait(10), "service failed to start"
        self.server = holder["server"]
        self._loop = holder["loop"]
        self._stop = holder["stop"]
        self.port = self.server.port
        return self

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(10)
            self._loop = None


def _drain_until_complete(client, timeout=120.0):
    progress = []
    for frame in client.events(timeout=timeout):
        if isinstance(frame, CampaignProgress):
            progress.append(frame)
        elif isinstance(frame, CampaignComplete):
            return progress, frame
        elif isinstance(frame, ServiceError):
            raise AssertionError(f"service error: {frame}")
    raise AssertionError("stream ended before completion")


def _service_spec(sampler: str = "counter") -> CampaignSpec:
    netlist = load_benchmark("des3", scale=0.25, seed=99)
    return CampaignSpec.from_netlist(netlist, _config(sampler), n_shards=3,
                                     force_streaming=True)


class TestServiceReliability:
    def test_follow_stream_survives_server_restart(self, tmp_path):
        """Satellite (a): kill the server mid-campaign; the client
        redials, re-subscribes, dedupes the replay, and the resumed
        stream's final t-values equal ``collect_result`` bitwise."""
        shared_root = tmp_path / "svc"
        spec = _service_spec()
        tenant = "lab"
        handle = _ServiceHandle(shared_root).start()
        port = handle.port
        # Stretch each shard so the bounce happens mid-campaign.
        set_fault_plan(FaultPlan.parse(
            "worker.shard:mode=delay,delay=0.4"))
        client = ServiceClient(handle.server.host, port, retry=RetryPolicy(
            max_attempts=10, base_delay=0.05, max_delay=0.5))
        try:
            client.submit(tenant, spec.to_json(), follow=True)
            queue = TaskQueue(shared_root / "queue.sqlite")
            worker = threading.Thread(
                target=run_worker, args=(queue,),
                kwargs=dict(worker="steady", drain=True), daemon=True)
            worker.start()
            # Wait for the first progress frame, then bounce the server.
            first = client.recv(timeout=30)
            while not isinstance(first, CampaignProgress):
                first = client.recv(timeout=30)
            handle.stop()
            restarted = _ServiceHandle(shared_root, port=port).start()
            try:
                progress, complete = _drain_until_complete(client,
                                                           timeout=60)
                worker.join(30)
            finally:
                restarted.stop()
        finally:
            client.close()
        seen = [first.shards_done] + [f.shards_done for f in progress]
        assert len(seen) == len(set(seen)), \
            "reconnect replayed a progress frame the dedupe should drop"
        assert complete.spec_hash == spec.content_hash
        final = progress[-1] if progress else first
        assert final.shards_done == (0, 1, 2)
        collected = collect_result(
            tenant_root(shared_root, tenant), spec.content_hash,
            timeout=30, queue=queue,
            shard_key_prefix=tenant_key_prefix(tenant))
        assert np.array_equal(decode_array(final.t_values),
                              collected.t_values)

    @pytest.mark.parametrize("sampler", ["counter", "sequence"])
    def test_four_domain_chaos_converges_bitwise(self, tmp_path, sampler):
        """The acceptance scenario: one seeded plan spanning four fault
        domains — a SIGKILLed worker, a corrupted checkpoint, transient
        queue errors, a severed watch connection — and the campaign still
        completes with t-values bitwise equal to an uninjected run."""
        shared_root = tmp_path / "svc"
        spec = _service_spec(sampler)
        tenant = "lab"
        handle = _ServiceHandle(shared_root).start()
        client = ServiceClient(handle.server.host, handle.port)
        try:
            client.submit(tenant, spec.to_json(), follow=True)

            # Domain 1 — worker kill: a doomed worker whose env plan
            # SIGKILLs it on its first shard; the lease expires and the
            # shard is redelivered.
            doomed = subprocess.Popen(
                [sys.executable, "-m", "repro.campaign.cli", "work",
                 "--root", str(shared_root), "--max-tasks", "1",
                 "--lease-seconds", "0.7", "--no-renew"],
                env={**os.environ, "PYTHONPATH": SRC_DIR,
                     "POLARIS_FAULT_PLAN": "worker.shard:mode=crash,max=1"},
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            doomed.wait(30)
            assert doomed.returncode == -9  # really SIGKILLed mid-shard

            # Domains 2+3 — survivor worker with corruption + queue
            # faults; domain 4 — the watch connection is severed on the
            # next receive and must resume.
            set_fault_plan(FaultPlan.parse(
                "seed=42;checkpoint.write:mode=corrupt,max=1;"
                "queue.ack:mode=error,max=2;"
                "service.recv:mode=sever,max=1"))
            executed = run_service_worker(
                shared_root, handle.server.host, handle.port,
                worker="survivor", drain=True, lease_seconds=2.0)
            assert executed >= 3  # all shards, incl. the reclaimed one

            progress, complete = _drain_until_complete(client, timeout=60)
        finally:
            client.close()
            handle.stop()
        assert complete.spec_hash == spec.content_hash
        streamed_t = decode_array(complete.assessment["t_values"])

        # The streamed partial was the clean payload and the server stored
        # the final assessment, so the campaign *completed* — but the
        # corrupted checkpoint is still on disk.  Verification quarantines
        # it and requeues the shard; a healer worker recomputes it (the
        # plan's corruption budget is spent) and everything agrees bitwise.
        troot = tenant_root(shared_root, tenant)
        queue = TaskQueue(shared_root / "queue.sqlite")
        prefix = tenant_key_prefix(tenant)
        paths = CampaignPaths(troot, spec.content_hash, key_prefix=prefix)
        bad = [k for k in range(spec.n_shards)
               if not checkpoint_ok(paths.shard_path(k))]
        assert len(bad) == 1
        assert verified_checkpoint(paths, bad[0], queue=queue) is None
        corrupt = [p.name for p in paths.shards_dir.iterdir()
                   if ".corrupt" in p.name]
        assert len(corrupt) == 1
        assert queue.counts()["pending"] == 1
        run_worker(queue, worker="healer", drain=True)
        assert checkpoint_ok(paths.shard_path(bad[0]))
        collected = collect_result(troot, spec.content_hash, timeout=60,
                                   queue=queue, shard_key_prefix=prefix)
        assert np.array_equal(streamed_t, collected.t_values)
        clean = run_campaign(tmp_path / "clean", spec.netlist(), spec.tvla,
                             n_shards=3, n_workers=1)
        _assert_bitwise_equal(collected, clean)
