"""Tests for the graph view of netlists."""

import networkx as nx

from repro.netlist import (
    combinational_graph,
    fanout_histogram,
    logic_depth,
    neighborhood,
    netlist_to_graph,
)


class TestNetlistToGraph:
    def test_nodes_and_edges(self, tiny_netlist):
        graph = netlist_to_graph(tiny_netlist, include_ports=False)
        assert set(graph.nodes) == {g.name for g in tiny_netlist.gates}
        assert graph.has_edge("g_and", "g_xor")
        assert graph.has_edge("g_xor", "g_nand")
        assert not graph.has_edge("g_not", "g_and")

    def test_port_pseudo_nodes(self, tiny_netlist):
        graph = netlist_to_graph(tiny_netlist, include_ports=True)
        assert "PI:a" in graph
        assert "PO:y" in graph
        assert graph.has_edge("PI:a", "g_and")
        assert graph.has_edge("g_not", "PO:y")

    def test_node_attributes(self, tiny_netlist):
        graph = netlist_to_graph(tiny_netlist, include_ports=False)
        assert graph.nodes["g_and"]["gate_type"] == "AND"
        assert graph.nodes["g_and"]["fanin"] == 2

    def test_edge_net_annotation(self, tiny_netlist):
        graph = netlist_to_graph(tiny_netlist, include_ports=False)
        assert graph.edges["g_and", "g_xor"]["net"] == "n1"


class TestCombinationalGraph:
    def test_is_dag_for_combinational_design(self, tiny_netlist):
        dag = combinational_graph(tiny_netlist)
        assert nx.is_directed_acyclic_graph(dag)

    def test_sequential_elements_removed(self, sequential_netlist):
        dag = combinational_graph(sequential_netlist)
        assert "ff" not in dag
        assert nx.is_directed_acyclic_graph(dag)


class TestNeighborhood:
    def test_returns_requested_count(self, tiny_netlist):
        graph = netlist_to_graph(tiny_netlist, include_ports=False)
        near = neighborhood(graph, "g_xor", 3)
        assert len(near) == 3
        assert "g_xor" not in near

    def test_small_graph_returns_fewer(self, tiny_netlist):
        graph = netlist_to_graph(tiny_netlist, include_ports=False)
        near = neighborhood(graph, "g_xor", 50)
        assert set(near) == {"g_and", "g_or", "g_nand", "g_not"}

    def test_immediate_neighbours_come_first(self, tiny_netlist):
        graph = netlist_to_graph(tiny_netlist, include_ports=False)
        near = neighborhood(graph, "g_and", 2)
        assert set(near) <= {"g_xor", "g_nand"}

    def test_unknown_gate_raises(self, tiny_netlist):
        graph = netlist_to_graph(tiny_netlist, include_ports=False)
        try:
            neighborhood(graph, "missing", 2)
            assert False, "expected KeyError"
        except KeyError:
            pass


class TestMetrics:
    def test_logic_depth(self, tiny_netlist):
        # a/b -> g_and -> g_xor -> g_nand -> g_not is the longest chain.
        assert logic_depth(tiny_netlist) == 4

    def test_logic_depth_random(self, random_netlist):
        assert logic_depth(random_netlist) >= 2

    def test_fanout_histogram_totals(self, tiny_netlist):
        histogram = fanout_histogram(tiny_netlist)
        assert sum(histogram.values()) == len(tiny_netlist)
        assert histogram.get(2, 0) >= 1  # g_and drives two sinks
