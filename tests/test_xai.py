"""Tests for the SHAP explainers, explanation objects, and rule extraction."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
)
from repro.xai import (
    Explanation,
    KernelShapExplainer,
    MaskingRule,
    RuleCondition,
    RuleExtractor,
    RuleSet,
    TreeShapExplainer,
    summarize_explanations,
)


@pytest.fixture
def binary_data(rng):
    features = rng.integers(0, 2, size=(300, 6)).astype(float)
    labels = (((features[:, 0] == 1) & (features[:, 1] == 0))
              | ((features[:, 2] == 1) & (features[:, 3] == 1))).astype(int)
    return features, labels


@pytest.fixture
def fitted_tree(binary_data):
    features, labels = binary_data
    return DecisionTreeClassifier(max_depth=4).fit(features, labels)


@pytest.fixture
def fitted_adaboost(binary_data):
    features, labels = binary_data
    return AdaBoostClassifier(n_estimators=30, learning_rate=0.5,
                              max_depth=2).fit(features, labels)


FEATURE_NAMES = [f"x{i}" for i in range(6)]


class TestKernelShap:
    def test_additivity(self, binary_data, fitted_tree):
        features, _ = binary_data
        explainer = KernelShapExplainer(fitted_tree.positive_score, features[:60],
                                        feature_names=FEATURE_NAMES)
        explanation = explainer.explain(features[0])
        assert explanation.additivity_gap < 1e-6

    def test_informative_features_get_larger_attribution(self, binary_data,
                                                         fitted_tree):
        features, _ = binary_data
        explainer = KernelShapExplainer(fitted_tree.positive_score, features[:60],
                                        feature_names=FEATURE_NAMES)
        explanations = explainer.explain_matrix(features[:15])
        importance = summarize_explanations(explanations)
        ranked = [name for name, _ in importance.ranked()]
        # x4 and x5 are pure noise: they must rank below the causal features.
        assert set(ranked[:4]) == {"x0", "x1", "x2", "x3"}

    def test_sampled_coalitions_close_to_exact(self, binary_data, fitted_tree):
        features, _ = binary_data
        exact = KernelShapExplainer(fitted_tree.positive_score, features[:40],
                                    feature_names=FEATURE_NAMES,
                                    max_exact_features=13)
        sampled = KernelShapExplainer(fitted_tree.positive_score, features[:40],
                                      feature_names=FEATURE_NAMES,
                                      max_exact_features=2, n_coalitions=600,
                                      seed=3)
        phi_exact = exact.explain(features[1]).shap_values
        phi_sampled = sampled.explain(features[1]).shap_values
        assert np.abs(phi_exact - phi_sampled).max() < 0.08

    def test_invalid_background_rejected(self, fitted_tree):
        with pytest.raises(ValueError):
            KernelShapExplainer(fitted_tree.positive_score, np.zeros((0, 3)))

    def test_sample_length_validated(self, binary_data, fitted_tree):
        features, _ = binary_data
        explainer = KernelShapExplainer(fitted_tree.positive_score, features[:10])
        with pytest.raises(ValueError):
            explainer.explain(np.zeros(3))


class TestTreeShap:
    @pytest.mark.parametrize("model_factory", [
        lambda X, y: DecisionTreeClassifier(max_depth=4).fit(X, y),
        lambda X, y: RandomForestClassifier(n_estimators=8, max_depth=4,
                                            random_state=1).fit(X, y),
        lambda X, y: AdaBoostClassifier(n_estimators=20, learning_rate=0.5,
                                        max_depth=2).fit(X, y),
        lambda X, y: GradientBoostingClassifier(n_estimators=20,
                                                learning_rate=0.3).fit(X, y),
    ])
    def test_additivity_for_all_supported_models(self, binary_data, model_factory):
        features, labels = binary_data
        model = model_factory(features, labels)
        explainer = TreeShapExplainer(model, feature_names=FEATURE_NAMES)
        for row in features[:5]:
            explanation = explainer.explain(row)
            assert explanation.additivity_gap < 1e-8

    def test_adaboost_prediction_matches_predict_proba(self, binary_data,
                                                       fitted_adaboost):
        features, _ = binary_data
        explainer = TreeShapExplainer(fitted_adaboost, feature_names=FEATURE_NAMES)
        explanation = explainer.explain(features[3])
        expected = fitted_adaboost.predict_proba(features[3:4])[0, -1]
        assert explanation.prediction == pytest.approx(expected)

    def test_agrees_with_kernel_shap_on_single_tree(self, binary_data, fitted_tree):
        features, _ = binary_data
        tree_explainer = TreeShapExplainer(fitted_tree, feature_names=FEATURE_NAMES)
        kernel = KernelShapExplainer(fitted_tree.positive_score, features,
                                     feature_names=FEATURE_NAMES)
        tree_phi = tree_explainer.explain(features[2]).shap_values
        kernel_phi = kernel.explain(features[2]).shap_values
        # Different value functions (path-dependent vs background marginal)
        # but attributions should broadly agree on one-hot style data.
        assert np.abs(tree_phi - kernel_phi).max() < 0.15

    def test_sampling_fallback_close_to_exact(self, binary_data, fitted_tree):
        features, _ = binary_data
        exact = TreeShapExplainer(fitted_tree, feature_names=FEATURE_NAMES,
                                  max_exact_features=12)
        sampled = TreeShapExplainer(fitted_tree, feature_names=FEATURE_NAMES,
                                    max_exact_features=1, n_permutations=300,
                                    seed=5)
        phi_exact = exact.explain(features[0]).shap_values
        phi_sampled = sampled.explain(features[0]).shap_values
        assert np.abs(phi_exact - phi_sampled).max() < 0.1

    def test_unsupported_model_rejected(self):
        with pytest.raises(TypeError):
            TreeShapExplainer(object())


class TestExplanationObjects:
    def _explanation(self):
        return Explanation(
            base_value=0.4,
            shap_values=np.array([0.3, -0.1, 0.05]),
            data=np.array([1.0, 0.0, 1.0]),
            feature_names=("a", "b", "c"),
            prediction=0.65,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Explanation(0.0, np.zeros(2), np.zeros(3), ("a", "b", "c"), 0.0)
        with pytest.raises(ValueError):
            Explanation(0.0, np.zeros(3), np.zeros(3), ("a", "b"), 0.0)

    def test_top_features_order(self):
        explanation = self._explanation()
        top = explanation.top_features(2)
        assert top[0][0] == "a"
        assert top[1][0] == "b"

    def test_waterfall_structure_and_render(self):
        explanation = self._explanation()
        waterfall = explanation.waterfall(max_features=2)
        assert waterfall.base_value == pytest.approx(0.4)
        assert len(waterfall.steps) == 2
        assert waterfall.steps[0].cumulative == pytest.approx(0.7)
        text = waterfall.render()
        assert "E[f(x)]" in text and "f(x)" in text and "a" in text

    def test_summarize_requires_matching_names(self):
        first = self._explanation()
        other = Explanation(0.1, np.zeros(3), np.zeros(3), ("x", "y", "z"), 0.1)
        with pytest.raises(ValueError):
            summarize_explanations([first, other])
        with pytest.raises(ValueError):
            summarize_explanations([])


class TestRules:
    def test_condition_descriptions(self):
        assert RuleCondition("G4=NAND", "==", 1.0).describe() == "G4 = NAND"
        assert RuleCondition("G4=NAND", "==", 0.0).describe() == "G4 != NAND"
        assert (RuleCondition("G0-G3 connected", "==", 1.0).describe()
                == "G0-G3 are connected")
        assert (RuleCondition("G0-G3 connected", "==", 0.0).describe()
                == "G0-G3 are not connected")
        assert "fanout" in RuleCondition("fanout", ">", 2.0).describe()

    def test_condition_evaluation(self):
        condition = RuleCondition("fanout", ">", 2.0)
        assert condition.evaluate(3.0)
        assert not condition.evaluate(1.0)
        equals = RuleCondition("G0=AND", "==", 1.0)
        assert equals.evaluate(1.0) and not equals.evaluate(0.0)

    def test_extractor_produces_rules_for_both_actions(self, binary_data,
                                                       fitted_adaboost):
        features, _ = binary_data
        explainer = TreeShapExplainer(fitted_adaboost, feature_names=FEATURE_NAMES)
        explanations = explainer.explain_matrix(features[:40])
        rules = RuleExtractor(top_features=3, min_support=2).extract(explanations)
        assert len(rules) >= 1
        actions = {rule.action for rule in rules.rules}
        assert actions <= {"mask", "no_mask"}
        text = rules.describe()
        assert "As long as" in text and "->" in text

    def test_ruleset_prediction(self):
        rules = RuleSet(
            rules=[
                MaskingRule(
                    conditions=(RuleCondition("G0=AND", "==", 1.0),),
                    action="mask", support=3, mean_shap=0.5, identifier="A")
            ],
            feature_names=("G0=AND", "G0=OR"),
        )
        assert rules.predict_action(np.array([1.0, 0.0])) == "mask"
        assert rules.predict_action(np.array([0.0, 1.0])) is None
        assert rules.predict_score(np.array([1.0, 0.0])) == 1.0
        assert rules.predict_score(np.array([0.0, 1.0])) == 0.5

    def test_extractor_requires_explanations(self):
        with pytest.raises(ValueError):
            RuleExtractor().extract([])
