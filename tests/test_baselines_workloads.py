"""Tests for the VALIANT baseline and the workload suites."""

import pytest

from repro.baselines import ValiantConfig, ValiantResult, valiant_protect
from repro.netlist import GateType, validate_netlist
from repro.simulation import functional_equivalent
from repro.tvla import assess_leakage
from repro.workloads import (
    WorkloadConfig,
    evaluation_designs,
    suite_summary,
    training_designs,
)


class TestValiant:
    def test_protects_leaky_gates_and_reduces_leakage(self, small_benchmark,
                                                      tvla_config):
        before = assess_leakage(small_benchmark, tvla_config)
        result = valiant_protect(small_benchmark,
                                 ValiantConfig(tvla=tvla_config, max_iterations=3))
        assert isinstance(result, ValiantResult)
        assert result.n_masked > 0
        assert result.tvla_runs >= 1
        assert result.runtime_seconds > 0
        after = assess_leakage(result.masked_netlist, tvla_config)
        assert after.mean_leakage < before.mean_leakage

    def test_masked_gates_tagged_as_valiant(self, small_benchmark, tvla_config):
        result = valiant_protect(small_benchmark,
                                 ValiantConfig(tvla=tvla_config, max_iterations=2))
        masked = [result.masked_netlist.gate(name) for name in result.masked_gates]
        assert masked
        assert all(g.attributes.get("protection_style") == "valiant" for g in masked)
        assert all(g.gate_type.is_masked for g in masked)

    def test_functionality_preserved(self, small_benchmark, tvla_config):
        result = valiant_protect(small_benchmark,
                                 ValiantConfig(tvla=tvla_config, max_iterations=2))
        assert validate_netlist(result.masked_netlist).is_valid
        assert functional_equivalent(small_benchmark, result.masked_netlist,
                                     n_vectors=128)

    def test_iteration_budget_respected(self, small_benchmark, tvla_config):
        result = valiant_protect(small_benchmark,
                                 ValiantConfig(tvla=tvla_config, max_iterations=1))
        assert result.iterations == 1
        assert result.tvla_runs == 1

    def test_runtime_dominated_by_tvla_iterations(self, small_benchmark,
                                                  tvla_config):
        quick = valiant_protect(small_benchmark,
                                ValiantConfig(tvla=tvla_config, max_iterations=1))
        thorough = valiant_protect(small_benchmark,
                                   ValiantConfig(tvla=tvla_config, max_iterations=4))
        assert thorough.tvla_runs > quick.tvla_runs


class TestWorkloads:
    def test_training_suite_contents(self):
        designs = training_designs(WorkloadConfig(scale=0.25))
        assert len(designs) == 6
        assert {d.name for d in designs} == {"c432", "c499", "c880", "c1355",
                                             "c1908", "c6288"}

    def test_evaluation_suite_contents(self):
        designs = evaluation_designs(WorkloadConfig(scale=0.2,
                                                    designs=("des3", "voter")))
        assert [d.name for d in designs] == ["des3", "voter"]

    def test_suite_summary_rows(self):
        designs = evaluation_designs(WorkloadConfig(scale=0.2, designs=("des3",)))
        rows = suite_summary(designs)
        assert rows[0]["name"] == "des3"
        assert rows[0]["suite"] == "evaluation"
        assert rows[0]["gates"] == len(designs[0])

    def test_custom_design_in_summary(self, tiny_netlist):
        rows = suite_summary([tiny_netlist])
        assert rows[0]["suite"] == "custom"
