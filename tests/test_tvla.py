"""Tests for the TVLA engine: moments, Welch's t-test, gate assessment."""

import numpy as np
import pytest
from scipy import stats

from repro.masking import apply_masking, maskable_gates
from repro.power import PowerModelConfig
from repro.tvla import (
    OnePassMoments,
    TVLA_THRESHOLD,
    TvlaConfig,
    assess_leakage,
    campaign_schedule,
    compare_assessments,
    moment_order_for_tvla,
    welch_from_accumulators,
    welch_from_moments,
    welch_higher_order,
    welch_t_test,
)


class TestOnePassMoments:
    def test_mean_and_variance_match_numpy(self, rng):
        samples = rng.normal(3.0, 2.0, size=500)
        acc = OnePassMoments(max_order=2)
        acc.update_batch(samples)
        assert acc.mean == pytest.approx(samples.mean())
        assert acc.variance == pytest.approx(samples.var(ddof=1))
        assert acc.standard_deviation == pytest.approx(samples.std(ddof=1))

    def test_vectorised_accumulation(self, rng):
        samples = rng.normal(size=(300, 7))
        acc = OnePassMoments(max_order=2, shape=(7,))
        acc.update_batch(samples)
        np.testing.assert_allclose(acc.mean, samples.mean(axis=0))
        np.testing.assert_allclose(acc.variance, samples.var(axis=0, ddof=1))

    def test_higher_order_moments(self, rng):
        samples = rng.exponential(2.0, size=2000)
        acc = OnePassMoments(max_order=4)
        acc.update_batch(samples)
        assert acc.central_moment(3) == pytest.approx(
            ((samples - samples.mean()) ** 3).mean(), rel=1e-6)
        assert acc.central_moment(4) == pytest.approx(
            ((samples - samples.mean()) ** 4).mean(), rel=1e-6)
        assert acc.skewness() == pytest.approx(stats.skew(samples), rel=1e-6)
        assert acc.kurtosis() == pytest.approx(stats.kurtosis(samples, fisher=False),
                                               rel=1e-6)

    def test_merge_equals_sequential(self, rng):
        first = rng.normal(size=400)
        second = rng.normal(2.0, 3.0, size=250)
        acc_a = OnePassMoments(max_order=4)
        acc_a.update_batch(first)
        acc_b = OnePassMoments(max_order=4)
        acc_b.update_batch(second)
        merged = acc_a.merge(acc_b)
        reference = OnePassMoments(max_order=4)
        reference.update_batch(np.concatenate([first, second]))
        assert merged.count == reference.count
        assert merged.mean == pytest.approx(reference.mean)
        assert merged.variance == pytest.approx(reference.variance)
        assert merged.central_moment(3) == pytest.approx(reference.central_moment(3))
        assert merged.central_moment(4) == pytest.approx(reference.central_moment(4))

    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_batched_update_matches_single_stream(self, rng, order):
        # The vectorised batch merge (Chan/Pébay) must agree with folding
        # the samples in one at a time, for every tracked order.
        samples = rng.gamma(2.0, 1.5, size=(1003, 5))
        sequential = OnePassMoments(max_order=order, shape=(5,))
        for sample in samples:
            sequential.update(sample)
        batched = OnePassMoments(max_order=order, shape=(5,))
        for chunk in np.array_split(samples, 7):
            batched.update_batch(chunk)
        assert batched.count == sequential.count
        np.testing.assert_allclose(batched.mean, sequential.mean, rtol=1e-10)
        np.testing.assert_allclose(batched.variance, sequential.variance,
                                   rtol=1e-9)
        for moment in range(2, order + 1):
            np.testing.assert_allclose(batched.central_moment(moment),
                                       sequential.central_moment(moment),
                                       rtol=1e-8)

    def test_merge_matches_batched_update(self, rng):
        first = rng.normal(size=(400, 3))
        second = rng.normal(1.0, 2.0, size=(300, 3))
        acc_a = OnePassMoments(max_order=4, shape=(3,))
        acc_a.update_batch(first)
        acc_b = OnePassMoments(max_order=4, shape=(3,))
        acc_b.update_batch(second)
        merged = acc_a.merge(acc_b)
        combined = OnePassMoments(max_order=4, shape=(3,))
        combined.update_batch(np.concatenate([first, second]))
        np.testing.assert_allclose(merged.mean, combined.mean)
        np.testing.assert_allclose(merged.central_moment(4),
                                   combined.central_moment(4), rtol=1e-9)

    def test_empty_batch_is_a_no_op(self):
        acc = OnePassMoments(shape=(2,))
        acc.update_batch(np.empty((0, 2)))
        assert acc.count == 0

    def test_batch_shape_mismatch_rejected(self):
        acc = OnePassMoments(shape=(3,))
        with pytest.raises(ValueError):
            acc.update_batch(np.zeros((5, 4)))
        with pytest.raises(ValueError):
            acc.update_batch(np.float64(1.0))

    def test_shape_mismatch_rejected(self):
        acc = OnePassMoments(shape=(3,))
        with pytest.raises(ValueError):
            acc.update(np.zeros(4))

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            OnePassMoments(max_order=1)
        with pytest.raises(ValueError):
            OnePassMoments(max_order=2.5)
        acc = OnePassMoments(max_order=2)
        acc.update(1.0)
        with pytest.raises(ValueError):
            acc.central_moment(3)

    def test_arbitrary_order_matches_numpy(self, rng):
        # The generalised Pébay combine tracks any order; order 5/6 back the
        # order-3 standardised TVLA test.
        samples = rng.exponential(1.0, size=(1500, 3))
        acc = OnePassMoments(max_order=6, shape=(3,))
        for chunk in np.array_split(samples, 9):
            acc.update_batch(chunk)
        centred = samples - samples.mean(axis=0)
        for order in (2, 3, 4, 5, 6):
            np.testing.assert_allclose(acc.central_moment(order),
                                       (centred ** order).mean(axis=0),
                                       rtol=1e-9)


class TestWelch:
    def test_matches_scipy(self, rng):
        group0 = rng.normal(0.0, 1.0, size=300)
        group1 = rng.normal(0.4, 1.5, size=280)
        result = welch_t_test(group0, group1)
        reference = stats.ttest_ind(group0, group1, equal_var=False)
        assert float(result.t_statistic) == pytest.approx(reference.statistic)
        assert float(result.p_value) == pytest.approx(reference.pvalue, rel=1e-6)

    def test_vectorised_columns(self, rng):
        group0 = rng.normal(size=(200, 5))
        group1 = rng.normal(0.3, 1.0, size=(200, 5))
        result = welch_t_test(group0, group1)
        assert result.t_statistic.shape == (5,)
        reference = stats.ttest_ind(group0, group1, equal_var=False, axis=0)
        np.testing.assert_allclose(result.t_statistic, reference.statistic)

    def test_identical_groups_give_zero_t(self):
        samples = np.ones(100)
        result = welch_t_test(samples, samples)
        assert float(result.t_statistic) == 0.0

    def test_threshold_mask(self, rng):
        group0 = rng.normal(0.0, 1.0, size=5000)
        group1 = rng.normal(5.0, 1.0, size=5000)
        result = welch_t_test(group0, group1)
        assert result.exceeds_threshold().all()
        assert abs(float(result.t_statistic)) > TVLA_THRESHOLD

    def test_from_moments_and_accumulators_agree(self, rng):
        group0 = rng.normal(size=400)
        group1 = rng.normal(0.2, 2.0, size=350)
        direct = welch_t_test(group0, group1)
        from_moments = welch_from_moments(group0.mean(), group0.var(ddof=1),
                                          group0.size, group1.mean(),
                                          group1.var(ddof=1), group1.size)
        acc0 = OnePassMoments()
        acc0.update_batch(group0)
        acc1 = OnePassMoments()
        acc1.update_batch(group1)
        from_acc = welch_from_accumulators(acc0, acc1)
        assert float(direct.t_statistic) == pytest.approx(float(from_moments.t_statistic))
        assert float(direct.t_statistic) == pytest.approx(float(from_acc.t_statistic))

    def test_too_few_traces_rejected(self):
        with pytest.raises(ValueError):
            welch_t_test(np.array([1.0]), np.array([1.0, 2.0]))


class TestWelchEdgeCases:
    """No NaN/inf may ever leak out of the t-test layer into leaky masks."""

    def test_fewer_than_two_samples_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            welch_from_moments(0.0, 1.0, 1, 0.0, 1.0, 100)
        with pytest.raises(ValueError, match="at least 2"):
            welch_from_moments(0.0, 1.0, 100, 0.0, 1.0, 0)
        acc_one = OnePassMoments()
        acc_one.update(1.0)
        acc_many = OnePassMoments()
        acc_many.update_batch(np.arange(10.0))
        with pytest.raises(ValueError, match="at least 2"):
            welch_from_accumulators(acc_one, acc_many)

    def test_zero_variance_both_groups_is_finite(self):
        result = welch_from_moments(1.0, 0.0, 50, 1.0, 0.0, 60)
        assert float(result.t_statistic) == 0.0
        assert np.isfinite(result.degrees_of_freedom)
        assert float(result.p_value) == pytest.approx(1.0)

    def test_zero_variance_single_columns(self, rng):
        # A constant column next to a noisy one: the constant column's t
        # must be finite and its mask entry well-defined.
        noisy0 = rng.normal(size=(200, 1))
        noisy1 = rng.normal(0.5, 1.0, size=(200, 1))
        group0 = np.hstack([np.full((200, 1), 3.0), noisy0])
        group1 = np.hstack([np.full((200, 1), 3.0), noisy1])
        result = welch_t_test(group0, group1)
        assert np.isfinite(result.t_statistic).all()
        assert np.isfinite(result.p_value).all()
        mask = result.exceeds_threshold(1.0)
        assert not mask[0]

    def test_single_gate_shapes(self, rng):
        # (n, 1) matrices keep their column axis; 1-D inputs collapse to
        # scalars; both stay finite.
        matrix = welch_t_test(rng.normal(size=(50, 1)),
                              rng.normal(size=(60, 1)))
        assert matrix.t_statistic.shape == (1,)
        scalar = welch_t_test(rng.normal(size=50), rng.normal(size=60))
        assert scalar.t_statistic.shape == ()
        assert np.isfinite(matrix.t_statistic).all()

    def test_zero_noise_assessment_has_finite_masks(self, tiny_netlist):
        # With noise_sigma=0 the fixed group's power is fully deterministic
        # (zero-variance columns) — leaky_mask must still be NaN/inf free.
        config = TvlaConfig(n_traces=64, n_fixed_classes=1, seed=3,
                            power=PowerModelConfig(noise_sigma=0.0),
                            tvla_order=2)
        assessment = assess_leakage(tiny_netlist, config)
        assert np.isfinite(assessment.t_values).all()
        assert np.isfinite(assessment.leakage_values).all()
        assert assessment.leaky_mask.dtype == bool
        assert np.isfinite(assessment.order_t_values[2]).all()
        assert assessment.leaky_mask_for_order(2).dtype == bool


class TestHigherOrderWelch:
    def test_moment_order_requirements(self):
        assert moment_order_for_tvla(1) == 2
        assert moment_order_for_tvla(2) == 4
        assert moment_order_for_tvla(3) == 6
        with pytest.raises(ValueError):
            moment_order_for_tvla(0)

    @pytest.mark.parametrize("order", [2, 3])
    def test_matches_explicit_preprocessing(self, rng, order):
        # welch_higher_order from moment accumulators must equal a plain
        # Welch t-test on the explicitly preprocessed traces (centered
        # squares / standardised cubes with the biased per-group sigma).
        group0 = rng.normal(0.0, 1.0, size=(900, 3))
        group1 = rng.normal(0.1, 1.4, size=(800, 3))

        def preprocess(samples):
            centred = samples - samples.mean(axis=0)
            if order == 2:
                return centred ** 2
            sigma = np.sqrt((centred ** 2).mean(axis=0))
            return (centred / sigma) ** 3

        acc0 = OnePassMoments(max_order=6, shape=(3,))
        acc0.update_batch(group0)
        acc1 = OnePassMoments(max_order=6, shape=(3,))
        acc1.update_batch(group1)
        direct = welch_t_test(preprocess(group0), preprocess(group1))
        from_moments = welch_higher_order(acc0, acc1, order)
        np.testing.assert_allclose(from_moments.t_statistic,
                                   direct.t_statistic, rtol=1e-9)
        np.testing.assert_allclose(from_moments.degrees_of_freedom,
                                   direct.degrees_of_freedom, rtol=1e-9)

    def test_order_one_delegates_to_plain_welch(self, rng):
        group0 = rng.normal(size=300)
        group1 = rng.normal(0.3, 1.0, size=280)
        acc0 = OnePassMoments(max_order=2)
        acc0.update_batch(group0)
        acc1 = OnePassMoments(max_order=2)
        acc1.update_batch(group1)
        result = welch_higher_order(acc0, acc1, 1)
        reference = welch_from_accumulators(acc0, acc1)
        assert float(result.t_statistic) == float(reference.t_statistic)

    def test_variance_difference_detected_at_order_two(self, rng):
        # Equal means, different variances: invisible to order 1, flagged
        # by order 2.
        group0 = rng.normal(0.0, 1.0, size=(4000, 2))
        group1 = rng.normal(0.0, 1.5, size=(4000, 2))
        acc0 = OnePassMoments(max_order=4, shape=(2,))
        acc0.update_batch(group0)
        acc1 = OnePassMoments(max_order=4, shape=(2,))
        acc1.update_batch(group1)
        order1 = welch_from_accumulators(acc0, acc1)
        order2 = welch_higher_order(acc0, acc1, 2)
        assert (np.abs(order1.t_statistic) < TVLA_THRESHOLD).all()
        assert (np.abs(order2.t_statistic) > TVLA_THRESHOLD).all()

    def test_insufficient_moments_rejected(self, rng):
        acc0 = OnePassMoments(max_order=2)
        acc0.update_batch(rng.normal(size=100))
        acc1 = OnePassMoments(max_order=2)
        acc1.update_batch(rng.normal(size=100))
        with pytest.raises(ValueError, match="central moments"):
            welch_higher_order(acc0, acc1, 2)
        with pytest.raises(ValueError, match="unsupported|order"):
            welch_higher_order(acc0, acc1, 4)

    def test_zero_variance_gives_zero_t(self):
        acc0 = OnePassMoments(max_order=6)
        acc0.update_batch(np.full(40, 2.0))
        acc1 = OnePassMoments(max_order=6)
        acc1.update_batch(np.full(40, 5.0))
        for order in (2, 3):
            result = welch_higher_order(acc0, acc1, order)
            assert np.isfinite(result.t_statistic).all()
            assert float(result.t_statistic) == 0.0


class TestAssessment:
    def test_per_gate_results(self, tiny_netlist, tvla_config):
        assessment = assess_leakage(tiny_netlist, tvla_config)
        assert len(assessment.gate_names) == len(tiny_netlist)
        assert assessment.t_values.shape == (len(tiny_netlist),)
        assert assessment.leakage_values.shape == (len(tiny_netlist),)
        assert assessment.n_leaky == int(assessment.leaky_mask.sum())
        assert assessment.elapsed_seconds > 0

    def test_unprotected_design_leaks(self, small_benchmark, tvla_config):
        assessment = assess_leakage(small_benchmark, tvla_config)
        assert assessment.n_leaky > 0
        assert assessment.mean_leakage > 0.5

    def test_full_masking_reduces_leakage(self, small_benchmark, tvla_config):
        masked = apply_masking(small_benchmark,
                               maskable_gates(small_benchmark)).netlist
        before = assess_leakage(small_benchmark, tvla_config)
        after = assess_leakage(masked, tvla_config)
        comparison = compare_assessments(before, after)
        assert comparison["leakage_reduction_pct"] > 20.0
        assert after.mean_leakage < before.mean_leakage

    def test_gate_lookup_helpers(self, tiny_netlist, tvla_config):
        assessment = assess_leakage(tiny_netlist, tvla_config)
        name = assessment.gate_names[0]
        assert assessment.gate_leakage(name) == pytest.approx(
            float(assessment.leakage_values[0]))
        assert assessment.gate_t_value(name) == pytest.approx(
            float(assessment.t_values[0]))
        with pytest.raises(KeyError):
            assessment.gate_leakage("missing")

    def test_deterministic_for_same_seed(self, tiny_netlist, tvla_config):
        first = assess_leakage(tiny_netlist, tvla_config)
        second = assess_leakage(tiny_netlist, tvla_config)
        np.testing.assert_allclose(first.t_values, second.t_values)

    def test_fixed_vs_fixed_mode(self, tiny_netlist):
        config = TvlaConfig(n_traces=100, n_fixed_classes=1, seed=2,
                            mode="fixed_vs_fixed")
        assessment = assess_leakage(tiny_netlist, config)
        assert assessment.t_values.shape == (len(tiny_netlist),)

    def test_unknown_mode_rejected(self, tiny_netlist):
        with pytest.raises(ValueError):
            assess_leakage(tiny_netlist, TvlaConfig(mode="bogus"))

    def test_more_fixed_classes_tracks_mean_abs_t(self, tiny_netlist):
        config = TvlaConfig(n_traces=100, n_fixed_classes=3, seed=2)
        assessment = assess_leakage(tiny_netlist, config)
        assert assessment.mean_abs_t is not None
        # The worst-case |t| is always at least the mean over classes.
        assert (np.abs(assessment.t_values) >= assessment.mean_abs_t - 1e-9).all()

    def test_summary_contents(self, tiny_netlist, tvla_config):
        summary = assess_leakage(tiny_netlist, tvla_config).summary()
        assert summary["gates"] == len(tiny_netlist)
        assert summary["n_traces"] == tvla_config.n_traces


class TestStreamingAssessment:
    def test_streaming_equals_two_pass(self, small_benchmark):
        # The streaming accumulator path must reproduce the classic
        # two-pass Welch test on identical traces (same seed, same chunk
        # iteration) to floating-point merge error.
        common = dict(n_traces=600, n_fixed_classes=2, seed=9,
                      chunk_traces=128)
        streamed = assess_leakage(small_benchmark,
                                  TvlaConfig(streaming=True, **common))
        two_pass = assess_leakage(small_benchmark,
                                  TvlaConfig(streaming=False, **common))
        assert streamed.streamed and not two_pass.streamed
        np.testing.assert_allclose(streamed.t_values, two_pass.t_values,
                                   rtol=0, atol=1e-9)
        np.testing.assert_allclose(streamed.mean_abs_t, two_pass.mean_abs_t,
                                   rtol=0, atol=1e-9)
        np.testing.assert_allclose(streamed.degrees_of_freedom,
                                   two_pass.degrees_of_freedom,
                                   rtol=1e-9, atol=1e-6)

    def test_streaming_auto_selection(self):
        assert TvlaConfig(n_traces=10_000, chunk_traces=2048).resolved_streaming()
        assert not TvlaConfig(n_traces=500, chunk_traces=2048).resolved_streaming()
        assert TvlaConfig(n_traces=500, chunk_traces=2048,
                          streaming=True).resolved_streaming()

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            TvlaConfig(chunk_traces=0)

    def test_streamed_flag_in_assessment(self, tiny_netlist):
        config = TvlaConfig(n_traces=300, n_fixed_classes=1, seed=3,
                            chunk_traces=100)
        assessment = assess_leakage(tiny_netlist, config)
        assert assessment.streamed
        assert assessment.summary()["streamed"]

    def test_schedule_reuse_matches_internal_build(self, tiny_netlist,
                                                   tvla_config):
        schedule = campaign_schedule(tiny_netlist, tvla_config)
        direct = assess_leakage(tiny_netlist, tvla_config)
        reused = assess_leakage(tiny_netlist, tvla_config,
                                campaigns=schedule)
        np.testing.assert_allclose(direct.t_values, reused.t_values)

    def test_schedule_validation(self, tiny_netlist, small_benchmark,
                                 tvla_config):
        schedule = campaign_schedule(tiny_netlist, tvla_config)
        with pytest.raises(ValueError, match="classes"):
            assess_leakage(tiny_netlist, tvla_config,
                           campaigns=schedule[:1])
        foreign = campaign_schedule(small_benchmark, tvla_config)
        with pytest.raises(ValueError, match="primary inputs"):
            assess_leakage(tiny_netlist, tvla_config, campaigns=foreign)

    def test_foreign_generator_rejected(self, tiny_netlist, small_benchmark,
                                        tvla_config):
        from repro.power import PowerTraceGenerator
        foreign = PowerTraceGenerator(small_benchmark,
                                      config=tvla_config.power,
                                      seed=tvla_config.seed)
        with pytest.raises(ValueError, match="generator was built"):
            assess_leakage(tiny_netlist, tvla_config, generator=foreign)


class TestHigherOrderAssessment:
    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError, match="tvla_order"):
            TvlaConfig(tvla_order=4)
        with pytest.raises(ValueError, match="tvla_order"):
            TvlaConfig(tvla_order=0)

    def test_higher_order_forces_streaming(self):
        config = TvlaConfig(n_traces=100, chunk_traces=2048, tvla_order=2)
        assert config.resolved_streaming()
        assert config.moment_order() == 4

    def test_order_results_shape_and_summary(self, tiny_netlist):
        config = TvlaConfig(n_traces=200, n_fixed_classes=2, seed=2,
                            tvla_order=3)
        assessment = assess_leakage(tiny_netlist, config)
        assert assessment.tvla_order == 3
        assert set(assessment.order_t_values) == {2, 3}
        for order in (2, 3):
            assert assessment.order_t_values[order].shape == \
                assessment.t_values.shape
            assert np.isfinite(assessment.order_t_values[order]).all()
        summary = assessment.summary()
        assert summary["tvla_order"] == 3
        assert "leaky_gates_order2" in summary
        with pytest.raises(KeyError):
            assessment.t_values_for_order(5)

    def test_order_one_assessment_has_no_higher_orders(self, tiny_netlist,
                                                       tvla_config):
        assessment = assess_leakage(tiny_netlist, tvla_config)
        assert assessment.order_t_values == {}
        with pytest.raises(KeyError):
            assessment.leaky_mask_for_order(2)

    def test_order_two_mirrors_masking_benefit(self, small_benchmark):
        # Acceptance shape: order-2 TVLA flags the unmasked bench netlist
        # as leaky, and full masking reduces the order-2 verdict just as it
        # reduces the order-1 one.
        config = TvlaConfig(n_traces=600, n_fixed_classes=2, seed=9,
                            chunk_traces=128, tvla_order=2)
        masked = apply_masking(small_benchmark,
                               maskable_gates(small_benchmark)).netlist
        before = assess_leakage(small_benchmark, config)
        after = assess_leakage(masked, config)
        assert before.n_leaky_for_order(2) > 0
        assert after.n_leaky_for_order(2) < before.n_leaky_for_order(2)
        assert np.abs(after.order_t_values[2]).mean() < \
            np.abs(before.order_t_values[2]).mean()
        # ... mirroring the order-1 before/after result.
        assert before.n_leaky > after.n_leaky
        comparison = compare_assessments(before, after)
        assert comparison["order2_before_leaky"] == before.n_leaky_for_order(2)
        assert comparison["order2_after_leaky"] == after.n_leaky_for_order(2)
        assert comparison["order2_mean_abs_t_reduction_pct"] > 0.0
