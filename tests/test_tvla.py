"""Tests for the TVLA engine: moments, Welch's t-test, gate assessment."""

import numpy as np
import pytest
from scipy import stats

from repro.masking import apply_masking, maskable_gates
from repro.power import PowerModelConfig
from repro.tvla import (
    OnePassMoments,
    TVLA_THRESHOLD,
    TvlaConfig,
    assess_leakage,
    campaign_schedule,
    compare_assessments,
    welch_from_accumulators,
    welch_from_moments,
    welch_t_test,
)


class TestOnePassMoments:
    def test_mean_and_variance_match_numpy(self, rng):
        samples = rng.normal(3.0, 2.0, size=500)
        acc = OnePassMoments(max_order=2)
        acc.update_batch(samples)
        assert acc.mean == pytest.approx(samples.mean())
        assert acc.variance == pytest.approx(samples.var(ddof=1))
        assert acc.standard_deviation == pytest.approx(samples.std(ddof=1))

    def test_vectorised_accumulation(self, rng):
        samples = rng.normal(size=(300, 7))
        acc = OnePassMoments(max_order=2, shape=(7,))
        acc.update_batch(samples)
        np.testing.assert_allclose(acc.mean, samples.mean(axis=0))
        np.testing.assert_allclose(acc.variance, samples.var(axis=0, ddof=1))

    def test_higher_order_moments(self, rng):
        samples = rng.exponential(2.0, size=2000)
        acc = OnePassMoments(max_order=4)
        acc.update_batch(samples)
        assert acc.central_moment(3) == pytest.approx(
            ((samples - samples.mean()) ** 3).mean(), rel=1e-6)
        assert acc.central_moment(4) == pytest.approx(
            ((samples - samples.mean()) ** 4).mean(), rel=1e-6)
        assert acc.skewness() == pytest.approx(stats.skew(samples), rel=1e-6)
        assert acc.kurtosis() == pytest.approx(stats.kurtosis(samples, fisher=False),
                                               rel=1e-6)

    def test_merge_equals_sequential(self, rng):
        first = rng.normal(size=400)
        second = rng.normal(2.0, 3.0, size=250)
        acc_a = OnePassMoments(max_order=4)
        acc_a.update_batch(first)
        acc_b = OnePassMoments(max_order=4)
        acc_b.update_batch(second)
        merged = acc_a.merge(acc_b)
        reference = OnePassMoments(max_order=4)
        reference.update_batch(np.concatenate([first, second]))
        assert merged.count == reference.count
        assert merged.mean == pytest.approx(reference.mean)
        assert merged.variance == pytest.approx(reference.variance)
        assert merged.central_moment(3) == pytest.approx(reference.central_moment(3))
        assert merged.central_moment(4) == pytest.approx(reference.central_moment(4))

    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_batched_update_matches_single_stream(self, rng, order):
        # The vectorised batch merge (Chan/Pébay) must agree with folding
        # the samples in one at a time, for every tracked order.
        samples = rng.gamma(2.0, 1.5, size=(1003, 5))
        sequential = OnePassMoments(max_order=order, shape=(5,))
        for sample in samples:
            sequential.update(sample)
        batched = OnePassMoments(max_order=order, shape=(5,))
        for chunk in np.array_split(samples, 7):
            batched.update_batch(chunk)
        assert batched.count == sequential.count
        np.testing.assert_allclose(batched.mean, sequential.mean, rtol=1e-10)
        np.testing.assert_allclose(batched.variance, sequential.variance,
                                   rtol=1e-9)
        for moment in range(2, order + 1):
            np.testing.assert_allclose(batched.central_moment(moment),
                                       sequential.central_moment(moment),
                                       rtol=1e-8)

    def test_merge_matches_batched_update(self, rng):
        first = rng.normal(size=(400, 3))
        second = rng.normal(1.0, 2.0, size=(300, 3))
        acc_a = OnePassMoments(max_order=4, shape=(3,))
        acc_a.update_batch(first)
        acc_b = OnePassMoments(max_order=4, shape=(3,))
        acc_b.update_batch(second)
        merged = acc_a.merge(acc_b)
        combined = OnePassMoments(max_order=4, shape=(3,))
        combined.update_batch(np.concatenate([first, second]))
        np.testing.assert_allclose(merged.mean, combined.mean)
        np.testing.assert_allclose(merged.central_moment(4),
                                   combined.central_moment(4), rtol=1e-9)

    def test_empty_batch_is_a_no_op(self):
        acc = OnePassMoments(shape=(2,))
        acc.update_batch(np.empty((0, 2)))
        assert acc.count == 0

    def test_batch_shape_mismatch_rejected(self):
        acc = OnePassMoments(shape=(3,))
        with pytest.raises(ValueError):
            acc.update_batch(np.zeros((5, 4)))
        with pytest.raises(ValueError):
            acc.update_batch(np.float64(1.0))

    def test_shape_mismatch_rejected(self):
        acc = OnePassMoments(shape=(3,))
        with pytest.raises(ValueError):
            acc.update(np.zeros(4))

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            OnePassMoments(max_order=5)
        acc = OnePassMoments(max_order=2)
        acc.update(1.0)
        with pytest.raises(ValueError):
            acc.central_moment(3)


class TestWelch:
    def test_matches_scipy(self, rng):
        group0 = rng.normal(0.0, 1.0, size=300)
        group1 = rng.normal(0.4, 1.5, size=280)
        result = welch_t_test(group0, group1)
        reference = stats.ttest_ind(group0, group1, equal_var=False)
        assert float(result.t_statistic) == pytest.approx(reference.statistic)
        assert float(result.p_value) == pytest.approx(reference.pvalue, rel=1e-6)

    def test_vectorised_columns(self, rng):
        group0 = rng.normal(size=(200, 5))
        group1 = rng.normal(0.3, 1.0, size=(200, 5))
        result = welch_t_test(group0, group1)
        assert result.t_statistic.shape == (5,)
        reference = stats.ttest_ind(group0, group1, equal_var=False, axis=0)
        np.testing.assert_allclose(result.t_statistic, reference.statistic)

    def test_identical_groups_give_zero_t(self):
        samples = np.ones(100)
        result = welch_t_test(samples, samples)
        assert float(result.t_statistic) == 0.0

    def test_threshold_mask(self, rng):
        group0 = rng.normal(0.0, 1.0, size=5000)
        group1 = rng.normal(5.0, 1.0, size=5000)
        result = welch_t_test(group0, group1)
        assert result.exceeds_threshold().all()
        assert abs(float(result.t_statistic)) > TVLA_THRESHOLD

    def test_from_moments_and_accumulators_agree(self, rng):
        group0 = rng.normal(size=400)
        group1 = rng.normal(0.2, 2.0, size=350)
        direct = welch_t_test(group0, group1)
        from_moments = welch_from_moments(group0.mean(), group0.var(ddof=1),
                                          group0.size, group1.mean(),
                                          group1.var(ddof=1), group1.size)
        acc0 = OnePassMoments()
        acc0.update_batch(group0)
        acc1 = OnePassMoments()
        acc1.update_batch(group1)
        from_acc = welch_from_accumulators(acc0, acc1)
        assert float(direct.t_statistic) == pytest.approx(float(from_moments.t_statistic))
        assert float(direct.t_statistic) == pytest.approx(float(from_acc.t_statistic))

    def test_too_few_traces_rejected(self):
        with pytest.raises(ValueError):
            welch_t_test(np.array([1.0]), np.array([1.0, 2.0]))


class TestAssessment:
    def test_per_gate_results(self, tiny_netlist, tvla_config):
        assessment = assess_leakage(tiny_netlist, tvla_config)
        assert len(assessment.gate_names) == len(tiny_netlist)
        assert assessment.t_values.shape == (len(tiny_netlist),)
        assert assessment.leakage_values.shape == (len(tiny_netlist),)
        assert assessment.n_leaky == int(assessment.leaky_mask.sum())
        assert assessment.elapsed_seconds > 0

    def test_unprotected_design_leaks(self, small_benchmark, tvla_config):
        assessment = assess_leakage(small_benchmark, tvla_config)
        assert assessment.n_leaky > 0
        assert assessment.mean_leakage > 0.5

    def test_full_masking_reduces_leakage(self, small_benchmark, tvla_config):
        masked = apply_masking(small_benchmark,
                               maskable_gates(small_benchmark)).netlist
        before = assess_leakage(small_benchmark, tvla_config)
        after = assess_leakage(masked, tvla_config)
        comparison = compare_assessments(before, after)
        assert comparison["leakage_reduction_pct"] > 20.0
        assert after.mean_leakage < before.mean_leakage

    def test_gate_lookup_helpers(self, tiny_netlist, tvla_config):
        assessment = assess_leakage(tiny_netlist, tvla_config)
        name = assessment.gate_names[0]
        assert assessment.gate_leakage(name) == pytest.approx(
            float(assessment.leakage_values[0]))
        assert assessment.gate_t_value(name) == pytest.approx(
            float(assessment.t_values[0]))
        with pytest.raises(KeyError):
            assessment.gate_leakage("missing")

    def test_deterministic_for_same_seed(self, tiny_netlist, tvla_config):
        first = assess_leakage(tiny_netlist, tvla_config)
        second = assess_leakage(tiny_netlist, tvla_config)
        np.testing.assert_allclose(first.t_values, second.t_values)

    def test_fixed_vs_fixed_mode(self, tiny_netlist):
        config = TvlaConfig(n_traces=100, n_fixed_classes=1, seed=2,
                            mode="fixed_vs_fixed")
        assessment = assess_leakage(tiny_netlist, config)
        assert assessment.t_values.shape == (len(tiny_netlist),)

    def test_unknown_mode_rejected(self, tiny_netlist):
        with pytest.raises(ValueError):
            assess_leakage(tiny_netlist, TvlaConfig(mode="bogus"))

    def test_more_fixed_classes_tracks_mean_abs_t(self, tiny_netlist):
        config = TvlaConfig(n_traces=100, n_fixed_classes=3, seed=2)
        assessment = assess_leakage(tiny_netlist, config)
        assert assessment.mean_abs_t is not None
        # The worst-case |t| is always at least the mean over classes.
        assert (np.abs(assessment.t_values) >= assessment.mean_abs_t - 1e-9).all()

    def test_summary_contents(self, tiny_netlist, tvla_config):
        summary = assess_leakage(tiny_netlist, tvla_config).summary()
        assert summary["gates"] == len(tiny_netlist)
        assert summary["n_traces"] == tvla_config.n_traces


class TestStreamingAssessment:
    def test_streaming_equals_two_pass(self, small_benchmark):
        # The streaming accumulator path must reproduce the classic
        # two-pass Welch test on identical traces (same seed, same chunk
        # iteration) to floating-point merge error.
        common = dict(n_traces=600, n_fixed_classes=2, seed=9,
                      chunk_traces=128)
        streamed = assess_leakage(small_benchmark,
                                  TvlaConfig(streaming=True, **common))
        two_pass = assess_leakage(small_benchmark,
                                  TvlaConfig(streaming=False, **common))
        assert streamed.streamed and not two_pass.streamed
        np.testing.assert_allclose(streamed.t_values, two_pass.t_values,
                                   rtol=0, atol=1e-9)
        np.testing.assert_allclose(streamed.mean_abs_t, two_pass.mean_abs_t,
                                   rtol=0, atol=1e-9)
        np.testing.assert_allclose(streamed.degrees_of_freedom,
                                   two_pass.degrees_of_freedom,
                                   rtol=1e-9, atol=1e-6)

    def test_streaming_auto_selection(self):
        assert TvlaConfig(n_traces=10_000, chunk_traces=2048).resolved_streaming()
        assert not TvlaConfig(n_traces=500, chunk_traces=2048).resolved_streaming()
        assert TvlaConfig(n_traces=500, chunk_traces=2048,
                          streaming=True).resolved_streaming()

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            TvlaConfig(chunk_traces=0)

    def test_streamed_flag_in_assessment(self, tiny_netlist):
        config = TvlaConfig(n_traces=300, n_fixed_classes=1, seed=3,
                            chunk_traces=100)
        assessment = assess_leakage(tiny_netlist, config)
        assert assessment.streamed
        assert assessment.summary()["streamed"]

    def test_schedule_reuse_matches_internal_build(self, tiny_netlist,
                                                   tvla_config):
        schedule = campaign_schedule(tiny_netlist, tvla_config)
        direct = assess_leakage(tiny_netlist, tvla_config)
        reused = assess_leakage(tiny_netlist, tvla_config,
                                campaigns=schedule)
        np.testing.assert_allclose(direct.t_values, reused.t_values)

    def test_schedule_validation(self, tiny_netlist, small_benchmark,
                                 tvla_config):
        schedule = campaign_schedule(tiny_netlist, tvla_config)
        with pytest.raises(ValueError, match="classes"):
            assess_leakage(tiny_netlist, tvla_config,
                           campaigns=schedule[:1])
        foreign = campaign_schedule(small_benchmark, tvla_config)
        with pytest.raises(ValueError, match="primary inputs"):
            assess_leakage(tiny_netlist, tvla_config, campaigns=foreign)

    def test_foreign_generator_rejected(self, tiny_netlist, small_benchmark,
                                        tvla_config):
        from repro.power import PowerTraceGenerator
        foreign = PowerTraceGenerator(small_benchmark,
                                      config=tvla_config.power,
                                      seed=tvla_config.seed)
        with pytest.raises(ValueError, match="generator was built"):
            assess_leakage(tiny_netlist, tvla_config, generator=foreign)
